open Rox_algebra
open Rox_joingraph
open Helpers

(* A small two-document setup joined on text values. *)
let two_doc_engine () =
  engine_of_trees
    [
      Rox_xmldom.Xml_parser.parse_string "<l><a>x</a><a>y</a><a>x</a></l>";
      Rox_xmldom.Xml_parser.parse_string "<r><b>x</b><b>z</b></r>";
    ]
  |> fst

(* ---------- Graph ---------- *)

let test_graph_basics () =
  let g = Graph.create () in
  let v0 = Graph.add_vertex g ~doc_id:0 Vertex.Root in
  let v1 = Graph.add_vertex g ~doc_id:0 (Vertex.Element "a") in
  let v2 = Graph.add_vertex g ~doc_id:0 (Vertex.Text None) in
  let e0 = Graph.add_edge g ~v1:v0.Vertex.id ~v2:v1.Vertex.id (Edge.Step Axis.Descendant) in
  let e1 = Graph.add_edge g ~v1:v1.Vertex.id ~v2:v2.Vertex.id (Edge.Step Axis.Child) in
  check_int "vertices" 3 (Graph.vertex_count g);
  check_int "edges" 2 (Graph.edge_count g);
  check_int "other end" v0.Vertex.id (Edge.other_end e0 v1.Vertex.id);
  check_bool "touches" true (Edge.touches e1 v2.Vertex.id);
  check_int "incident v1" 2 (List.length (Graph.incident g v1.Vertex.id));
  check_bool "connected" true (Graph.connected g);
  check_bool "find edge" true (Graph.find_edge g v0.Vertex.id v1.Vertex.id <> None);
  check_bool "find missing" true (Graph.find_edge g v0.Vertex.id v2.Vertex.id = None);
  (match Graph.add_edge g ~v1:v0.Vertex.id ~v2:v0.Vertex.id Edge.Equijoin with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "self loop must fail")

let test_equi_closure () =
  let g = Graph.create () in
  let vs = Array.init 4 (fun _ -> (Graph.add_vertex g ~doc_id:0 (Vertex.Text None)).Vertex.id) in
  ignore (Graph.add_edge g ~v1:vs.(0) ~v2:vs.(1) Edge.Equijoin);
  ignore (Graph.add_edge g ~v1:vs.(0) ~v2:vs.(2) Edge.Equijoin);
  ignore (Graph.add_edge g ~v1:vs.(0) ~v2:vs.(3) Edge.Equijoin);
  let added = Graph.equi_closure g in
  (* 1-2, 1-3, 2-3 derived: C(4,2) - 3 = 3 new. *)
  check_int "three derived" 3 (List.length added);
  check_bool "all derived flagged" true (List.for_all (fun e -> e.Edge.derived) added);
  check_int "idempotent" 0 (List.length (Graph.equi_closure g))

let test_vertex_labels () =
  check_string "element" "person"
    (Vertex.label { Vertex.id = 0; doc_id = 0; annot = Vertex.Element "person" });
  check_string "text pred" "text() < 145"
    (Vertex.label { Vertex.id = 0; doc_id = 0; annot = Vertex.Text (Some (Selection.Lt 145.0)) });
  check_string "attr" "@id"
    (Vertex.label { Vertex.id = 0; doc_id = 0; annot = Vertex.Attr ("id", None) });
  check_bool "equality value" true
    (Vertex.equality_value
       { Vertex.id = 0; doc_id = 0; annot = Vertex.Text (Some (Selection.Eq "v")) }
    = Some "v")

(* ---------- Exec: vertex domains ---------- *)

let test_vertex_domain () =
  let engine, _ = engine_of_xml "<a><n>10</n><n>200</n><b x=\"7\"/><b x=\"9\"/></a>" in
  let dom annot = Exec.vertex_domain engine { Vertex.id = 0; doc_id = 0; annot } in
  check_bool "root" true (arr (dom Vertex.Root) = [| 0 |]);
  check_int "element" 2 (clen (dom (Vertex.Element "n")));
  check_int "missing element" 0 (clen (dom (Vertex.Element "zz")));
  check_int "all texts" 2 (clen (dom (Vertex.Text None)));
  check_int "text eq" 1 (clen (dom (Vertex.Text (Some (Selection.Eq "10")))));
  check_int "text lt strict" 1 (clen (dom (Vertex.Text (Some (Selection.Lt 200.0)))));
  check_int "text le" 2 (clen (dom (Vertex.Text (Some (Selection.Le 200.0)))));
  check_int "text gt strict" 0 (clen (dom (Vertex.Text (Some (Selection.Gt 200.0)))));
  check_int "attrs" 2 (clen (dom (Vertex.Attr ("x", None))));
  check_int "attr eq" 1 (clen (dom (Vertex.Attr ("x", Some (Selection.Eq "7")))));
  check_int "attr range" 1 (clen (dom (Vertex.Attr ("x", Some (Selection.Gt 8.0)))));
  check_bool "count agrees" true
    (Exec.vertex_domain_count engine { Vertex.id = 0; doc_id = 0; annot = Vertex.Text None } = 2)

let test_can_index_init () =
  let can annot = Exec.can_index_init { Vertex.id = 0; doc_id = 0; annot } in
  check_bool "root" true (can Vertex.Root);
  check_bool "element" true (can (Vertex.Element "a"));
  check_bool "text eq" true (can (Vertex.Text (Some (Selection.Eq "v"))));
  check_bool "attr eq" true (can (Vertex.Attr ("x", Some (Selection.Eq "v"))));
  check_bool "bare text" false (can (Vertex.Text None));
  check_bool "range text" false (can (Vertex.Text (Some (Selection.Lt 5.0))))

(* ---------- Exec: full pairs, both directions ---------- *)

let step_graph engine =
  ignore engine;
  let g = Graph.create () in
  let a = Graph.add_vertex g ~doc_id:0 (Vertex.Element "a") in
  let t = Graph.add_vertex g ~doc_id:0 (Vertex.Text None) in
  let e = Graph.add_edge g ~v1:a.Vertex.id ~v2:t.Vertex.id (Edge.Step Axis.Child) in
  (g, a, t, e)

let test_full_pairs_directions () =
  let engine = two_doc_engine () in
  let g, a, t, e = step_graph engine in
  let t1 = Exec.vertex_domain engine a and t2 = Exec.vertex_domain engine t in
  let fwd = Exec.full_pairs ~step_direction:Exec.From_v1 engine g e ~t1 ~t2 in
  let rev = Exec.full_pairs ~step_direction:Exec.From_v2 engine g e ~t1 ~t2 in
  let norm p =
    List.sort compare
      (List.combine (Array.to_list (arr p.Exec.left)) (Array.to_list (arr p.Exec.right)))
  in
  check_int "three text children" 3 (Exec.pair_count fwd);
  check_bool "reverse direction same pairs" true (norm fwd = norm rev)

let test_sampled_step () =
  let engine = two_doc_engine () in
  let g, a, t, e = step_graph engine in
  let sample = Exec.vertex_domain engine a in
  ignore t;
  let cut = Exec.sampled engine g e ~outer:Exec.From_v1 ~sample ~inner_table:None ~limit:2 in
  check_int "cut at 2" 2 cut.Cutoff.produced;
  check_bool "not completed" true (not cut.Cutoff.completed)

let test_sampled_equijoin () =
  let engine = two_doc_engine () in
  let g = Graph.create () in
  let ta = Graph.add_vertex g ~doc_id:0 (Vertex.Text None) in
  let tb = Graph.add_vertex g ~doc_id:1 (Vertex.Text None) in
  let e = Graph.add_edge g ~v1:ta.Vertex.id ~v2:tb.Vertex.id Edge.Equijoin in
  let sample = Exec.vertex_domain engine (Graph.vertex g ta.Vertex.id) in
  let cut = Exec.sampled engine g e ~outer:Exec.From_v1 ~sample ~inner_table:None ~limit:100 in
  (* "x" appears twice in doc0 and once in doc1 -> 2 pairs. *)
  check_int "two matches" 2 cut.Cutoff.produced;
  check_bool "completed" true cut.Cutoff.completed

(* ---------- Relation ---------- *)

let pairs left right =
  { Exec.left = col (Array.of_list left); right = col (Array.of_list right) }

let test_relation_basics () =
  let r = Relation.of_pairs ~v1:0 ~v2:1 (pairs [ 1; 1; 2 ] [ 10; 11; 10 ]) in
  check_int "rows" 3 (Relation.rows r);
  check_int "width" 2 (Relation.width r);
  check_bool "column v1" true (arr (Relation.column r 0) = [| 1; 1; 2 |]);
  check_bool "distinct v1" true (arr (Relation.column_distinct r 0) = [| 1; 2 |]);
  check_bool "has vertex" true (Relation.has_vertex r 1);
  check_bool "hasn't vertex" false (Relation.has_vertex r 9)

let test_relation_extend () =
  let r = Relation.of_pairs ~v1:0 ~v2:1 (pairs [ 1; 2 ] [ 10; 11 ]) in
  (* Extend on column 1: 10 -> {100, 101}; 11 -> {} *)
  let r2 = Relation.extend r ~on:1 ~new_vertex:2 (pairs [ 10; 10 ] [ 100; 101 ]) in
  check_int "rows" 2 (Relation.rows r2);
  check_bool "new column" true (arr (Relation.column_distinct r2 2) = [| 100; 101 |]);
  check_bool "old rows filtered" true (arr (Relation.column_distinct r2 0) = [| 1 |])

let test_relation_fuse () =
  let left = Relation.of_pairs ~v1:0 ~v2:1 (pairs [ 1; 2 ] [ 10; 20 ]) in
  let right = Relation.of_pairs ~v1:2 ~v2:3 (pairs [ 100; 200 ] [ 7; 8 ]) in
  (* Join column 1 with column 2 via pairs (10,100) and (20,999/no). *)
  let fused = Relation.fuse left right ~on_left:1 ~on_right:2 (pairs [ 10 ] [ 100 ]) in
  check_int "one row" 1 (Relation.rows fused);
  check_int "width 4" 4 (Relation.width fused);
  check_bool "values" true (arr (Relation.column fused 3) = [| 7 |])

let test_relation_filter_pairs () =
  let r = Relation.of_pairs ~v1:0 ~v2:1 (pairs [ 1; 2; 3 ] [ 10; 20; 30 ]) in
  let filtered = Relation.filter_pairs r ~c1:0 ~c2:1 (pairs [ 1; 3 ] [ 10; 30 ]) in
  check_int "two rows" 2 (Relation.rows filtered);
  check_bool "kept" true (arr (Relation.column filtered 0) = [| 1; 3 |])

let test_relation_distinct_sort_project () =
  let r = Relation.of_pairs ~v1:0 ~v2:1 (pairs [ 2; 1; 2 ] [ 20; 10; 20 ]) in
  let d = Relation.distinct r in
  check_int "distinct rows" 2 (Relation.rows d);
  let s = Relation.sort_rows d in
  check_bool "sorted" true (arr (Relation.column s 0) = [| 1; 2 |]);
  let p = Relation.project s [| 1 |] in
  check_int "projected width" 1 (Relation.width p);
  check_bool "projected col" true (arr (Relation.column p 1) = [| 10; 20 |])

let test_relation_cross () =
  let a = Relation.singleton ~vertex:0 (col [| 1; 2 |]) in
  let b = Relation.singleton ~vertex:1 (col [| 7; 8; 9 |]) in
  let c = Relation.cross a b in
  check_int "6 rows" 6 (Relation.rows c);
  check_int "width 2" 2 (Relation.width c)

(* Edge shapes through every columnar kernel, checked bit-for-bit
   against the row-major reference [Relation.Naive]: zero-row, one-row
   and duplicate-heavy relations exercise the empty allocations, the
   sorted fast paths and the CSR pair grouping. *)
let test_relation_kernels_vs_naive () =
  let module N = Relation.Naive in
  let agree name got ref_ =
    check_bool name true (Relation.equal got (N.to_relation ref_))
  in
  let check_shape name l r =
    let la = Array.of_list l and ra = Array.of_list r in
    let naive = N.of_pairs ~v1:0 ~v2:1 ~left:la ~right:ra in
    let rel = Relation.of_pairs ~v1:0 ~v2:1 (pairs l r) in
    let pl = [| 3; 5; 3 |] and pr = [| 100; 101; 102 |] in
    agree (name ^ ": extend")
      (Relation.extend rel ~on:0 ~new_vertex:2 (pairs [ 3; 5; 3 ] [ 100; 101; 102 ]))
      (N.extend naive ~on:0 ~new_vertex:2 ~left:pl ~right:pr);
    let naive_o = N.of_pairs ~v1:3 ~v2:4 ~left:[| 9; 7 |] ~right:[| 40; 41 |] in
    let rel_o = Relation.of_pairs ~v1:3 ~v2:4 (pairs [ 9; 7 ] [ 40; 41 ]) in
    agree (name ^ ": fuse")
      (Relation.fuse rel rel_o ~on_left:1 ~on_right:3 (pairs [ 9; 7 ] [ 9; 9 ]))
      (N.fuse naive naive_o ~on_left:1 ~on_right:3 ~pl:[| 9; 7 |] ~pr:[| 9; 9 |]);
    agree (name ^ ": filter_pairs")
      (Relation.filter_pairs rel ~c1:0 ~c2:1 (pairs [ 3; 5 ] [ 9; 7 ]))
      (N.filter_pairs naive ~c1:0 ~c2:1 ~left:[| 3; 5 |] ~right:[| 9; 7 |]);
    agree (name ^ ": distinct") (Relation.distinct rel) (N.distinct naive);
    agree (name ^ ": sort_rows") (Relation.sort_rows rel) (N.sort_rows naive);
    agree (name ^ ": project") (Relation.project rel [| 1 |]) (N.project naive [| 1 |]);
    agree (name ^ ": cross") (Relation.cross rel rel_o) (N.cross naive naive_o)
  in
  check_shape "zero-row" [] [];
  check_shape "one-row" [ 3 ] [ 9 ];
  check_shape "dup-heavy" [ 3; 3; 3; 3 ] [ 9; 9; 9; 9 ];
  (* One-column relation: singleton's sorted flag makes distinct and
     sort_rows no-ops and puts extend on its merge path. *)
  let nodes = [| 2; 5; 9 |] in
  let one_n = N.singleton ~vertex:0 nodes in
  let one = Relation.singleton ~vertex:0 (col nodes) in
  agree "one-column: distinct" (Relation.distinct one) (N.distinct one_n);
  agree "one-column: sort_rows" (Relation.sort_rows one) (N.sort_rows one_n);
  agree "one-column: extend (merge path)"
    (Relation.extend one ~on:0 ~new_vertex:1 (pairs [ 2; 2; 9 ] [ 7; 8; 1 ]))
    (N.extend one_n ~on:0 ~new_vertex:1 ~left:[| 2; 2; 9 |] ~right:[| 7; 8; 1 |])

let test_relation_iter_rows () =
  let r = Relation.of_pairs ~v1:0 ~v2:1 (pairs [ 1; 2 ] [ 10; 20 ]) in
  let acc = ref [] in
  Relation.iter_rows r (fun row -> acc := Array.copy row :: !acc);
  check_int "two rows" 2 (List.length !acc)

(* ---------- Runtime ---------- *)

(* doc0: <l><a>x</a><a>y</a><a>x</a></l>, doc1: <r><b>x</b><b>z</b></r> *)
let small_join_graph engine =
  ignore engine;
  let g = Graph.create () in
  let root0 = Graph.add_vertex g ~doc_id:0 Vertex.Root in
  let a = Graph.add_vertex g ~doc_id:0 (Vertex.Element "a") in
  let ta = Graph.add_vertex g ~doc_id:0 (Vertex.Text None) in
  let root1 = Graph.add_vertex g ~doc_id:1 Vertex.Root in
  let b = Graph.add_vertex g ~doc_id:1 (Vertex.Element "b") in
  let tb = Graph.add_vertex g ~doc_id:1 (Vertex.Text None) in
  ignore (Graph.add_edge g ~v1:root0.Vertex.id ~v2:a.Vertex.id (Edge.Step Axis.Descendant));
  ignore (Graph.add_edge g ~v1:root1.Vertex.id ~v2:b.Vertex.id (Edge.Step Axis.Descendant));
  let sa = Graph.add_edge g ~v1:a.Vertex.id ~v2:ta.Vertex.id (Edge.Step Axis.Child) in
  let sb = Graph.add_edge g ~v1:b.Vertex.id ~v2:tb.Vertex.id (Edge.Step Axis.Child) in
  let j = Graph.add_edge g ~v1:ta.Vertex.id ~v2:tb.Vertex.id Edge.Equijoin in
  (g, [ sa; sb; j ], (a, ta, b, tb))

let test_runtime_trivial_edges () =
  let engine = two_doc_engine () in
  let g, _, _ = small_join_graph engine in
  let rt = Runtime.create engine g in
  (* The two root-descendant edges are pre-executed. *)
  check_int "2 trivial pre-executed" 3 (List.length (Runtime.unexecuted_edges rt));
  check_bool "not all executed" true (not (Runtime.all_executed rt))

let test_runtime_execute_all_orders () =
  (* Any execution order yields the same final relation contents. *)
  let final_rows order_sel =
    let engine = two_doc_engine () in
    let g, edges, _ = small_join_graph engine in
    let rt = Runtime.create engine g in
    List.iter (fun e -> ignore (Runtime.execute_edge rt e : Runtime.exec_info)) (order_sel edges);
    let rel = Runtime.final_relation rt in
    let rows = ref [] in
    Relation.iter_rows rel (fun row -> rows := Array.to_list row :: !rows);
    (* Normalize column order by sorting vertex ids with cells. *)
    let verts = Array.to_list (Relation.vertices rel) in
    List.map (fun row -> List.sort compare (List.combine verts row)) !rows
    |> List.sort compare
  in
  let r1 = final_rows (fun l -> l) in
  let r2 = final_rows List.rev in
  check_bool "same rows both orders" true (r1 = r2);
  check_bool "expected row count" true (List.length r1 = 2) (* two 'x' left x one 'x' right *)

let test_runtime_tables_shrink () =
  let engine = two_doc_engine () in
  let g, edges, (a, ta, _, tb) = small_join_graph engine in
  let rt = Runtime.create engine g in
  match edges with
  | [ sa; sb; j ] ->
    ignore (Runtime.execute_edge rt sa : Runtime.exec_info);
    check_int "T(ta) full" 3 (clen (Option.get (Runtime.table rt ta.Vertex.id)));
    ignore (Runtime.execute_edge rt sb : Runtime.exec_info);
    let info = Runtime.execute_edge rt j in
    (* x joins x: left has two x texts, right one. *)
    check_int "pairs" 2 info.Runtime.pair_count;
    check_int "T(ta) reduced" 2 (clen (Option.get (Runtime.table rt ta.Vertex.id)));
    check_int "T(tb) reduced" 1 (clen (Option.get (Runtime.table rt tb.Vertex.id)));
    check_int "T(a) reduced" 2 (clen (Option.get (Runtime.table rt a.Vertex.id)));
    check_bool "a flagged changed" true (List.mem a.Vertex.id info.Runtime.changed);
    check_bool "all executed" true (Runtime.all_executed rt)
  | _ -> Alcotest.fail "unexpected edges"

let test_runtime_double_execute () =
  let engine = two_doc_engine () in
  let g, edges, _ = small_join_graph engine in
  let rt = Runtime.create engine g in
  let e = List.hd edges in
  ignore (Runtime.execute_edge rt e : Runtime.exec_info);
  match Runtime.execute_edge rt e with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double execution must fail"

let test_runtime_blowup () =
  let engine = two_doc_engine () in
  let g, edges, _ = small_join_graph engine in
  let rt =
    Runtime.create
      ~config:{ (Runtime.default_config ()) with Runtime.max_rows = 1 }
      engine g
  in
  match List.iter (fun e -> ignore (Runtime.execute_edge rt e : Runtime.exec_info)) edges with
  | exception Runtime.Blowup _ -> ()
  | _ -> Alcotest.fail "expected blowup with max_rows=1"

let test_runtime_implied_equijoins () =
  (* A triangle of equi-joins: executing two implies the third. *)
  let engine =
    engine_of_trees
      [
        Rox_xmldom.Xml_parser.parse_string "<l><a>x</a></l>";
        Rox_xmldom.Xml_parser.parse_string "<r><b>x</b></r>";
        Rox_xmldom.Xml_parser.parse_string "<s><c>x</c></s>";
      ]
    |> fst
  in
  let g = Graph.create () in
  let ts =
    Array.init 3 (fun d -> (Graph.add_vertex g ~doc_id:d (Vertex.Text None)).Vertex.id)
  in
  let e01 = Graph.add_edge g ~v1:ts.(0) ~v2:ts.(1) Edge.Equijoin in
  let e02 = Graph.add_edge g ~v1:ts.(0) ~v2:ts.(2) Edge.Equijoin in
  let e12 = Graph.add_edge g ~v1:ts.(1) ~v2:ts.(2) Edge.Equijoin in
  let rt = Runtime.create engine g in
  ignore (Runtime.execute_edge rt e01 : Runtime.exec_info);
  check_bool "e12 not yet implied" true (not (Runtime.executed rt e12));
  ignore (Runtime.execute_edge rt e02 : Runtime.exec_info);
  check_bool "e12 now implied" true (Runtime.executed rt e12);
  check_bool "all executed" true (Runtime.all_executed rt)

let test_relation_too_large () =
  let r = Relation.of_pairs ~v1:0 ~v2:1 (pairs [ 1; 1; 1 ] [ 10; 11; 12 ]) in
  (* Extending each of 3 rows with 3 matches = 9 rows > 4. *)
  let p = pairs [ 10; 10; 10; 11; 11; 11; 12; 12; 12 ] [ 5; 6; 7; 5; 6; 7; 5; 6; 7 ] in
  (match Relation.extend ~max_rows:4 r ~on:1 ~new_vertex:2 p with
   | exception Relation.Too_large n -> check_bool "aborted early" true (n = 5)
   | _ -> Alcotest.fail "expected Too_large");
  (* Without the cap it succeeds. *)
  check_int "uncapped rows" 9 (Relation.rows (Relation.extend r ~on:1 ~new_vertex:2 p))

let test_cross_too_large () =
  let a = Relation.singleton ~vertex:0 (col (Array.init 100 (fun i -> i))) in
  let b = Relation.singleton ~vertex:1 (col (Array.init 100 (fun i -> i))) in
  match Relation.cross ~max_rows:5000 a b with
  | exception Relation.Too_large _ -> ()
  | _ -> Alcotest.fail "expected Too_large from cross"

let test_pretty () =
  let engine = two_doc_engine () in
  let g, _, _ = small_join_graph engine in
  let s = Pretty.to_string g in
  check_bool "mentions equijoin" true
    (String.length s > 0
    && (let found = ref false in
        String.iteri (fun i c -> if c = '=' && i > 0 then found := true) s;
        !found));
  let dot = Pretty.to_dot g in
  check_bool "dot header" true (String.length dot > 10 && String.sub dot 0 5 = "graph")

let suite =
  [
    Alcotest.test_case "graph basics" `Quick test_graph_basics;
    Alcotest.test_case "equi closure" `Quick test_equi_closure;
    Alcotest.test_case "vertex labels" `Quick test_vertex_labels;
    Alcotest.test_case "vertex domain" `Quick test_vertex_domain;
    Alcotest.test_case "can_index_init" `Quick test_can_index_init;
    Alcotest.test_case "full pairs both directions" `Quick test_full_pairs_directions;
    Alcotest.test_case "sampled step" `Quick test_sampled_step;
    Alcotest.test_case "sampled equijoin" `Quick test_sampled_equijoin;
    Alcotest.test_case "relation basics" `Quick test_relation_basics;
    Alcotest.test_case "relation extend" `Quick test_relation_extend;
    Alcotest.test_case "relation fuse" `Quick test_relation_fuse;
    Alcotest.test_case "relation filter pairs" `Quick test_relation_filter_pairs;
    Alcotest.test_case "relation distinct/sort/project" `Quick test_relation_distinct_sort_project;
    Alcotest.test_case "relation cross" `Quick test_relation_cross;
    Alcotest.test_case "relation kernels vs naive shapes" `Quick
      test_relation_kernels_vs_naive;
    Alcotest.test_case "relation iter rows" `Quick test_relation_iter_rows;
    Alcotest.test_case "runtime trivial edges" `Quick test_runtime_trivial_edges;
    Alcotest.test_case "runtime order independence" `Quick test_runtime_execute_all_orders;
    Alcotest.test_case "runtime tables shrink" `Quick test_runtime_tables_shrink;
    Alcotest.test_case "runtime double execute" `Quick test_runtime_double_execute;
    Alcotest.test_case "runtime blowup" `Quick test_runtime_blowup;
    Alcotest.test_case "runtime implied equijoins" `Quick test_runtime_implied_equijoins;
    Alcotest.test_case "relation too large" `Quick test_relation_too_large;
    Alcotest.test_case "cross too large" `Quick test_cross_too_large;
    Alcotest.test_case "pretty" `Quick test_pretty;
  ]

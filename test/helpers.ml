(* Shared test scaffolding: tiny documents, random tree generators, and
   reference implementations used across the suites. *)

open Rox_xmldom

let tags = [| "a"; "b"; "c"; "d"; "item" |]
let attr_names = [| "id"; "ref"; "x" |]
let words = [| "1"; "2"; "42"; "hello"; "145"; "7.5"; "x y"; "" |]

(* Random tree via a seeded generator; sizes stay small so naive
   reference computations are cheap. *)
let random_tree_node rng ~max_depth =
  let open Rox_util in
  let rec node depth =
    let kind = Xoshiro.int rng 10 in
    if depth >= max_depth || kind < 2 then Tree.Text (Xoshiro.pick rng words)
    else if kind = 2 then Tree.Comment "a comment"
    else if kind = 3 then Tree.Pi ("target", "content")
    else begin
      let n_attrs = Xoshiro.int rng 3 in
      let attrs =
        List.init n_attrs (fun i ->
            ( Xoshiro.pick rng attr_names ^ string_of_int i,
              Xoshiro.pick rng words ))
      in
      let n_children = Xoshiro.int rng 4 in
      Tree.element ~attrs (Xoshiro.pick rng tags)
        (List.init n_children (fun _ -> node (depth + 1)))
    end
  in
  let n_children = 1 + Xoshiro.int rng 4 in
  Tree.element (Xoshiro.pick rng tags) (List.init n_children (fun _ -> node 1))

let random_tree seed =
  let rng = Rox_util.Xoshiro.create seed in
  Tree.document (random_tree_node rng ~max_depth:4)

(* Trees normalized for exact serialization round-trips: no whitespace-only
   text (the parser drops it) and no adjacent text siblings (serialization
   concatenates them). *)
let random_tree_no_blank seed =
  let rec merge_texts = function
    | Tree.Text a :: Tree.Text b :: rest -> merge_texts (Tree.Text (a ^ b) :: rest)
    | n :: rest -> n :: merge_texts rest
    | [] -> []
  in
  let rec scrub = function
    | Tree.Text s ->
      let s = if String.trim s = "" then "t" else s in
      Tree.Text s
    | Tree.Element e ->
      Tree.Element
        { e with Tree.children = merge_texts (List.map scrub e.Tree.children) }
    | (Tree.Comment _ | Tree.Pi _) as n -> n
  in
  let t = random_tree seed in
  match scrub (Tree.Element t.Tree.root) with
  | Tree.Element root -> { Tree.root }
  | _ -> assert false

let engine_of_trees trees =
  let engine = Rox_storage.Engine.create () in
  let refs =
    List.mapi (fun i t -> Rox_storage.Engine.add_tree engine ~uri:(Printf.sprintf "doc%d.xml" i) t) trees
  in
  (engine, refs)

let engine_of_xml xml =
  let tree = Xml_parser.parse_string xml in
  let engine = Rox_storage.Engine.create () in
  let docref = Rox_storage.Engine.add_tree engine ~uri:"doc0.xml" tree in
  (engine, docref)

(* A small site document exercising every axis. *)
let site_xml =
  {|<site>
  <people>
    <person id="p1"><name>Ann</name><address><city>X</city><province>Z</province></address></person>
    <person id="p2"><name>Bob</name><address><city>Y</city></address></person>
    <person id="p3"><name>Cas</name><address><province>W</province></address></person>
  </people>
  <auctions>
    <auction id="a1"><ref person="p1"/><price>10</price></auction>
    <auction id="a2"><ref person="p2"/><ref person="p3"/><price>200</price></auction>
  </auctions>
</site>|}

(* Reference axis evaluation through the naive evaluator. *)
let naive_axis engine ~doc_id ~pre axis =
  let path =
    { Rox_xquery.Ast.start = Rox_xquery.Ast.From_self;
      steps = [ { Rox_xquery.Ast.axis; test = Rox_xquery.Ast.Node_test; preds = [] } ] }
  in
  Rox_xquery.Naive.eval_path engine ~context:[ (doc_id, pre) ] path
  |> List.map snd

let int_array = Alcotest.(array int)

(* Column bridges: tests state expectations as int arrays; the kernels
   speak {!Rox_util.Column.t}. *)
let col a = Rox_util.Column.unsafe_of_array_detect a
let arr c = Rox_util.Column.to_array c
let clen c = Rox_util.Column.length c

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* Sorted distinct list equality for answers given as (doc, pre) or pre. *)
let same_set a b = List.sort_uniq compare a = List.sort_uniq compare b

open Rox_util
open Helpers

(* ---------- Xoshiro ---------- *)

let test_determinism () =
  let a = Xoshiro.create 7 and b = Xoshiro.create 7 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Xoshiro.int64 a = Xoshiro.int64 b)
  done

let test_distinct_seeds () =
  let a = Xoshiro.create 1 and b = Xoshiro.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Xoshiro.int64 a = Xoshiro.int64 b then incr same
  done;
  check_bool "streams differ" true (!same < 4)

let test_split_independent () =
  let a = Xoshiro.create 5 in
  let b = Xoshiro.split a in
  let xs = List.init 32 (fun _ -> Xoshiro.int64 a) in
  let ys = List.init 32 (fun _ -> Xoshiro.int64 b) in
  check_bool "split streams differ" true (xs <> ys)

let prop_int_range =
  qtest "Xoshiro.int in range" QCheck.(pair small_int (int_range 1 1000)) (fun (seed, n) ->
      let rng = Xoshiro.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Xoshiro.int rng n in
        if v < 0 || v >= n then ok := false
      done;
      !ok)

let prop_float_range =
  qtest "Xoshiro.float in [0,1)" QCheck.small_int (fun seed ->
      let rng = Xoshiro.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Xoshiro.float rng in
        if v < 0.0 || v >= 1.0 then ok := false
      done;
      !ok)

let prop_sample_wor =
  qtest "sample_without_replacement: sorted, distinct, in range"
    QCheck.(triple small_int (int_range 0 200) (int_range 0 250))
    (fun (seed, n, k) ->
      let rng = Xoshiro.create seed in
      let s = Xoshiro.sample_without_replacement rng n k in
      let expected_len = min n k in
      Array.length s = max 0 expected_len
      && Array.for_all (fun x -> x >= 0 && x < n) s
      && (let sorted = Array.copy s in
          Array.sort compare sorted;
          sorted = s)
      && List.length (List.sort_uniq compare (Array.to_list s)) = Array.length s)

let test_shuffle_permutes () =
  let rng = Xoshiro.create 11 in
  let arr = Array.init 50 (fun i -> i) in
  let copy = Array.copy arr in
  Xoshiro.shuffle rng copy;
  check_bool "same multiset" true
    (List.sort compare (Array.to_list copy) = Array.to_list arr);
  check_bool "actually shuffled" true (copy <> arr)

(* ---------- Int_vec ---------- *)

let test_int_vec_basic () =
  let v = Int_vec.create () in
  check_bool "empty" true (Int_vec.is_empty v);
  for i = 0 to 99 do Int_vec.push v (i * 2) done;
  check_int "length" 100 (Int_vec.length v);
  check_int "get" 42 (Int_vec.get v 21);
  Int_vec.set v 21 7;
  check_int "set" 7 (Int_vec.get v 21);
  check_int "last" 198 (Int_vec.last v);
  check_int "pop" 198 (Int_vec.pop v);
  check_int "length after pop" 99 (Int_vec.length v);
  Int_vec.clear v;
  check_bool "cleared" true (Int_vec.is_empty v)

let test_int_vec_bounds () =
  let v = Int_vec.of_array [| 1; 2 |] in
  Alcotest.check_raises "get out of range" (Invalid_argument "Int_vec.get") (fun () ->
      ignore (Int_vec.get v 2));
  Alcotest.check_raises "pop empty" (Invalid_argument "Int_vec.pop") (fun () ->
      ignore (Int_vec.pop (Int_vec.create ())))

let prop_int_vec_roundtrip =
  qtest "of_array/to_array roundtrip" QCheck.(array small_int) (fun arr ->
      Int_vec.to_array (Int_vec.of_array arr) = arr)

let prop_int_vec_sorted_dedup =
  qtest "sorted_dedup = List.sort_uniq" QCheck.(array small_int) (fun arr ->
      Int_vec.sorted_dedup (Int_vec.of_array arr)
      = Array.of_list (List.sort_uniq compare (Array.to_list arr)))

let prop_int_vec_append =
  qtest "append_array" QCheck.(pair (array small_int) (array small_int)) (fun (a, b) ->
      let v = Int_vec.of_array a in
      Int_vec.append_array v b;
      Int_vec.to_array v = Array.append a b)

let prop_int_vec_fold =
  qtest "fold sums" QCheck.(array small_int) (fun arr ->
      Int_vec.fold ( + ) 0 (Int_vec.of_array arr) = Array.fold_left ( + ) 0 arr)

(* ---------- Str_pool ---------- *)

let test_str_pool () =
  let p = Str_pool.create () in
  let a = Str_pool.intern p "alpha" in
  let b = Str_pool.intern p "beta" in
  check_int "dense ids" 0 a;
  check_int "dense ids" 1 b;
  check_int "idempotent" a (Str_pool.intern p "alpha");
  check_string "roundtrip" "beta" (Str_pool.to_string p b);
  check_bool "find hit" true (Str_pool.find p "alpha" = Some a);
  check_bool "find miss" true (Str_pool.find p "gamma" = None);
  check_int "count" 2 (Str_pool.count p)

let test_str_pool_growth () =
  let p = Str_pool.create () in
  for i = 0 to 4999 do
    check_int "sequential ids" i (Str_pool.intern p (string_of_int i))
  done;
  check_string "resolves after growth" "1234" (Str_pool.to_string p 1234)

(* ---------- Bin_search ---------- *)

let naive_lower_bound a x =
  let rec go i = if i >= Array.length a || a.(i) >= x then i else go (i + 1) in
  go 0

let naive_upper_bound a x =
  let rec go i = if i >= Array.length a || a.(i) > x then i else go (i + 1) in
  go 0

let sorted_arr = QCheck.map (fun l -> Array.of_list (List.sort compare l)) QCheck.(list small_int)

let prop_lower_bound =
  qtest "lower_bound = naive" QCheck.(pair sorted_arr small_int) (fun (a, x) ->
      Bin_search.lower_bound a x = naive_lower_bound a x)

let prop_upper_bound =
  qtest "upper_bound = naive" QCheck.(pair sorted_arr small_int) (fun (a, x) ->
      Bin_search.upper_bound a x = naive_upper_bound a x)

let prop_lower_bound_from =
  qtest "lower_bound_from consistent" QCheck.(pair sorted_arr small_int) (fun (a, x) ->
      let full = Bin_search.lower_bound a x in
      (* Starting at or before the answer gives the same boundary. *)
      List.for_all
        (fun lo -> Bin_search.lower_bound_from a lo x = max lo full)
        (List.init (min 5 (Array.length a + 1)) (fun i -> i)))

let prop_mem =
  qtest "mem = Array.mem" QCheck.(pair sorted_arr small_int) (fun (a, x) ->
      Bin_search.mem a x = Array.exists (( = ) x) a)

let prop_count_range =
  qtest "count_range = filter length" QCheck.(triple sorted_arr small_int small_int)
    (fun (a, lo, hi) ->
      Bin_search.count_range a ~lo ~hi
      = Array.length (Array.of_seq (Seq.filter (fun x -> lo <= x && x <= hi) (Array.to_seq a))))

(* ---------- Stats ---------- *)

let test_stats_known () =
  check_bool "mean" true (Stats.mean [| 1.0; 2.0; 3.0 |] = 2.0);
  check_bool "mean empty" true (Stats.mean [||] = 0.0);
  check_bool "variance" true (Stats.variance [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] = 4.0);
  check_bool "stddev" true (Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] = 2.0);
  check_bool "geomean" true (abs_float (Stats.geometric_mean [| 1.0; 4.0 |] -. 2.0) < 1e-9);
  check_bool "min" true (Stats.minimum [| 3.0; 1.0; 2.0 |] = 1.0);
  check_bool "max" true (Stats.maximum [| 3.0; 1.0; 2.0 |] = 3.0)

let test_percentile () =
  let a = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check_bool "p50" true (Stats.percentile a 50.0 = 50.0);
  check_bool "p100" true (Stats.percentile a 100.0 = 100.0);
  check_bool "p1" true (Stats.percentile a 1.0 = 1.0);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty array") (fun () ->
      ignore (Stats.percentile [||] 50.0))

let prop_variance_nonneg =
  qtest "variance >= 0" QCheck.(list (float_range (-100.) 100.)) (fun l ->
      Stats.variance (Array.of_list l) >= -1e-9)

(* ---------- Table_fmt ---------- *)

let test_table_render () =
  let s = Table_fmt.render ~header:[ "name"; "n" ] [ [ "alpha"; "1" ]; [ "b"; "22" ] ] in
  check_bool "contains header" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0));
  (* All non-empty lines have the same width. *)
  let widths =
    String.split_on_char '\n' s
    |> List.filter (fun l -> l <> "")
    |> List.map String.length
    |> List.sort_uniq compare
  in
  check_int "uniform width" 1 (List.length widths)

let test_human () =
  check_string "plain" "999" (Table_fmt.human_int 999);
  check_string "K" "43.5K" (Table_fmt.human_int 43500);
  check_string "M" "1.1M" (Table_fmt.human_int 1100000);
  check_string "float small" "0.50" (Table_fmt.human_float 0.5);
  check_string "float int" "12" (Table_fmt.human_float 12.0)

(* ---------- Ascii_plot ---------- *)

let test_plot_render () =
  let s =
    Ascii_plot.render ~width:40 ~height:8
      [
        { Ascii_plot.label = "a"; marker = '*'; values = [| 1.0; 10.0; 100.0 |] };
        { Ascii_plot.label = "b"; marker = 'x'; values = [| 100.0; 10.0; 1.0 |] };
      ]
  in
  check_bool "mentions legend" true
    (String.length s > 0
    && (let lines = String.split_on_char '\n' s in
        List.exists (fun l -> String.length l > 6 &&
          (let found = ref false in
           String.iteri (fun i c -> if c = 'l' && i + 5 < String.length l
             && String.sub l i 6 = "legend" then found := true) l;
           !found)) lines));
  (* The earliest series wins overlaps; both markers must appear. *)
  check_bool "marker a present" true (String.contains s '*');
  check_bool "marker b present" true (String.contains s 'x')

let test_plot_empty () =
  check_string "empty" "(empty plot)\n" (Ascii_plot.render []);
  check_string "no data" "(no data)\n"
    (Ascii_plot.render [ { Ascii_plot.label = "a"; marker = '*'; values = [| nan |] } ])

let test_plot_constant () =
  (* A constant series must not crash the scaling. *)
  let s =
    Ascii_plot.render ~width:20 ~height:5
      [ { Ascii_plot.label = "c"; marker = 'o'; values = Array.make 10 5.0 } ]
  in
  check_bool "renders" true (String.contains s 'o')

(* ---------- Minijson writer ---------- *)

let test_json_write_escapes () =
  let s = Minijson.to_string (Minijson.Str "a\"b\\c\nd\te\x01f") in
  check_string "escaped" {|"a\"b\\c\nd\te\u0001f"|} s;
  (match Minijson.parse s with
   | Ok (Minijson.Str back) -> check_string "round-trip" "a\"b\\c\nd\te\x01f" back
   | _ -> Alcotest.fail "escape round-trip failed")

let test_json_write_numbers () =
  check_string "integral" "42" (Minijson.to_string (Minijson.Num 42.0));
  check_string "negative" "-7" (Minijson.to_string (Minijson.Num (-7.0)));
  check_string "fraction" "1.5" (Minijson.to_string (Minijson.Num 1.5));
  check_string "nan is null" "null" (Minijson.to_string (Minijson.Num Float.nan));
  check_string "inf is null" "null"
    (Minijson.to_string (Minijson.Num Float.infinity));
  (* Huge integral floats keep full precision via %.17g. *)
  (match Minijson.parse (Minijson.to_string (Minijson.Num 1e300)) with
   | Ok (Minijson.Num f) -> check_bool "1e300 survives" true (f = 1e300)
   | _ -> Alcotest.fail "huge float round-trip failed")

let test_json_deep_nesting () =
  let deep = ref (Minijson.Num 1.0) in
  for _ = 1 to 200 do
    deep := Minijson.Arr [ !deep ]
  done;
  let obj = Minijson.Obj [ ("deep", !deep); ("empty", Minijson.Arr []) ] in
  match Minijson.parse (Minijson.to_string obj) with
  | Ok back -> check_bool "200 levels round-trip" true (back = obj)
  | Error e -> Alcotest.fail e

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Minijson.Null;
        map (fun b -> Minijson.Bool b) bool;
        map (fun n -> Minijson.Num (float_of_int n)) small_signed_int;
        map (fun s -> Minijson.Str s) (string_size (int_bound 12));
      ]
  in
  let value =
    fix (fun self depth ->
        if depth <= 0 then scalar
        else
          frequency
            [
              (3, scalar);
              (1, map (fun l -> Minijson.Arr l)
                   (list_size (int_bound 4) (self (depth - 1))));
              (1, map (fun l -> Minijson.Obj l)
                   (list_size (int_bound 4)
                      (pair (string_size ~gen:(char_range 'a' 'z') (int_bound 6))
                         (self (depth - 1)))));
            ])
  in
  value 4

let prop_json_roundtrip =
  qtest ~count:300 "Minijson parse(to_string v) = v"
    (QCheck.make ~print:(fun v -> Minijson.to_string v) json_gen)
    (fun v -> Minijson.parse (Minijson.to_string v) = Ok v)

let suite =
  [
    Alcotest.test_case "xoshiro determinism" `Quick test_determinism;
    Alcotest.test_case "xoshiro distinct seeds" `Quick test_distinct_seeds;
    Alcotest.test_case "xoshiro split" `Quick test_split_independent;
    prop_int_range;
    prop_float_range;
    prop_sample_wor;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "int_vec basic" `Quick test_int_vec_basic;
    Alcotest.test_case "int_vec bounds" `Quick test_int_vec_bounds;
    prop_int_vec_roundtrip;
    prop_int_vec_sorted_dedup;
    prop_int_vec_append;
    prop_int_vec_fold;
    Alcotest.test_case "str_pool basic" `Quick test_str_pool;
    Alcotest.test_case "str_pool growth" `Quick test_str_pool_growth;
    prop_lower_bound;
    prop_upper_bound;
    prop_lower_bound_from;
    prop_mem;
    prop_count_range;
    Alcotest.test_case "stats known values" `Quick test_stats_known;
    Alcotest.test_case "percentile" `Quick test_percentile;
    prop_variance_nonneg;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "human formats" `Quick test_human;
    Alcotest.test_case "plot render" `Quick test_plot_render;
    Alcotest.test_case "plot empty" `Quick test_plot_empty;
    Alcotest.test_case "plot constant" `Quick test_plot_constant;
    Alcotest.test_case "json write escapes" `Quick test_json_write_escapes;
    Alcotest.test_case "json write numbers" `Quick test_json_write_numbers;
    Alcotest.test_case "json deep nesting" `Quick test_json_deep_nesting;
    prop_json_roundtrip;
  ]

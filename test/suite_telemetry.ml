(* The telemetry layer (lib/telemetry): log₂ histogram bucket boundaries,
   span nesting and exception-safety of the sink, the zero-cost disabled
   path, exporter round-trips through the Chrome-trace validator, and the
   property the multi-domain server leans on — per-domain registries
   summing exactly into the mutex-guarded process aggregate. *)

open Helpers
open Rox_telemetry
module Trace = Rox_joingraph.Trace
module A = Rox_analysis

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---------- Histogram bucket boundaries ---------- *)

let test_bucket_boundaries () =
  (* Bucket i covers [2^i, 2^(i+1)); bucket 0 also absorbs v <= 1. *)
  List.iter
    (fun (v, b) -> check_int (Printf.sprintf "bucket_of %d" v) b (Metrics.bucket_of v))
    [ (0, 0); (1, 0); (2, 1); (3, 1); (4, 2); (7, 2); (8, 3); (1023, 9); (1024, 10) ];
  for k = 1 to 61 do
    check_int
      (Printf.sprintf "bucket_of 2^%d" k)
      k
      (Metrics.bucket_of (1 lsl k));
    check_int
      (Printf.sprintf "bucket_of (2^%d - 1)" k)
      (k - 1)
      (Metrics.bucket_of ((1 lsl k) - 1))
  done;
  check_int "bucket_upper 0" 1 (Metrics.bucket_upper 0);
  check_int "bucket_upper 3" 15 (Metrics.bucket_upper 3);
  check_int "last bucket unbounded" max_int
    (Metrics.bucket_upper (Metrics.n_buckets - 1));
  check_int "max_int lands in last bucket" (Metrics.n_buckets - 1)
    (Metrics.bucket_of max_int)

let prop_bucket_contains =
  qtest ~count:500 "bucket_of v is the unique bucket containing v"
    QCheck.(int_range 1 max_int)
    (fun v ->
      let b = Metrics.bucket_of v in
      v <= Metrics.bucket_upper b && (b = 0 || v > Metrics.bucket_upper (b - 1)))

let test_observe_and_quantile () =
  let m = Metrics.create () in
  let h = m.Metrics.query_ns in
  check_int "empty quantile" 0 (int_of_float (Metrics.quantile h 0.5));
  for _ = 1 to 99 do
    Metrics.observe h 1
  done;
  Metrics.observe h 1000;
  check_int "count" 100 h.Metrics.h_count;
  check_int "sum" (99 + 1000) h.Metrics.h_sum;
  check_int "bucket 0 holds the 1s" 99 h.Metrics.h_buckets.(0);
  check_int "bucket_of 1000" 9 (Metrics.bucket_of 1000);
  check_int "bucket 9 holds the 1000" 1 h.Metrics.h_buckets.(9);
  (* Quantiles log-interpolate within the holding bucket: bucket 0 pins
     to 1.0, and a rank landing at the top of bucket i resolves to
     2^(i+1) (the next power of two), not the inclusive upper bound. *)
  check_int "p50" 1 (int_of_float (Metrics.quantile h 0.5));
  check_int "p99" 1 (int_of_float (Metrics.quantile h 0.99));
  check_int "p100" 1024 (int_of_float (Metrics.quantile h 1.0));
  (* Negative / zero observations land in bucket 0, contribute 0 to sum. *)
  Metrics.observe h (-5);
  check_int "neg counted" 101 h.Metrics.h_count;
  check_int "neg adds nothing" (99 + 1000) h.Metrics.h_sum

(* ---------- Span recording ---------- *)

let test_span_nesting () =
  let sink = Sink.create ~enabled:true () in
  let r =
    Sink.with_span sink "a" (fun () ->
        let x =
          Sink.with_span sink "b" (fun () ->
              Sink.with_span sink "c" (fun () -> 40))
        in
        x + Sink.with_span sink "d" (fun () -> 2))
  in
  check_int "result threads through" 42 r;
  check_int "span count" 4 (Sink.span_count sink);
  check_int "no live spans" 0 (Sink.depth sink);
  let names = List.map (fun s -> s.Sink.name) (Sink.spans_chronological sink) in
  Alcotest.(check (list string)) "chronological order" [ "a"; "b"; "c"; "d" ] names;
  let depths = List.map (fun s -> s.Sink.depth) (Sink.spans_chronological sink) in
  Alcotest.(check (list int)) "depths" [ 0; 1; 2; 1 ] depths;
  (* Completion order: children close before parents. *)
  let completed = List.map (fun s -> s.Sink.name) (Sink.spans sink) in
  Alcotest.(check (list string)) "completion order" [ "c"; "b"; "d"; "a" ] completed;
  List.iter
    (fun s -> check_bool "non-negative dur" true (s.Sink.dur_ns >= 0L))
    (Sink.spans sink);
  check_int "RX4xx clean" 0 (List.length (A.Telemetry_check.check sink))

let test_span_exception_safety () =
  let sink = Sink.create ~enabled:true () in
  let recorded = ref (-1) in
  (try
     Sink.with_span sink "outer" (fun () ->
         Sink.with_span sink "boom"
           ~record:(fun _ dur -> recorded := dur)
           (fun () -> failwith "abort"))
   with Failure _ -> ());
  check_int "both spans closed" 2 (Sink.span_count sink);
  check_int "depth restored" 0 (Sink.depth sink);
  check_bool "record fired on unwind" true (!recorded >= 0);
  check_int "still well-nested" 0 (List.length (A.Telemetry_check.check sink))

let test_span_cap () =
  let sink = Sink.create ~cap:3 ~enabled:true () in
  for i = 1 to 5 do
    Sink.with_span sink (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  check_int "kept at cap" 3 (Sink.span_count sink);
  check_int "dropped" 2 (Sink.dropped sink);
  check_int "spans_dropped counter" 2
    (Sink.metrics sink).Metrics.spans_dropped.Metrics.c_value;
  let ds = A.Telemetry_check.check sink in
  check_bool "RX404 warning raised" true
    (List.exists (fun d -> d.A.Diagnostic.code = "RX404") ds);
  check_bool "truncation is not an error" true
    (not (List.exists A.Diagnostic.is_error ds));
  Sink.reset sink;
  check_int "reset clears spans" 0 (Sink.span_count sink);
  check_int "reset clears dropped" 0 (Sink.dropped sink)

let prop_random_nesting_well_formed =
  qtest ~count:100 "random span trees pass the RX401/RX402 verifier"
    QCheck.(small_int)
    (fun seed ->
      let rng = Rox_util.Xoshiro.create (seed + 7) in
      let sink = Sink.create ~enabled:true () in
      let rec go depth =
        let n = Rox_util.Xoshiro.int rng 3 in
        for i = 0 to n - 1 do
          Sink.with_span sink
            (Printf.sprintf "s%d_%d" depth i)
            (fun () -> if depth < 4 then go (depth + 1))
        done
      in
      go 0;
      Sink.depth sink = 0 && A.Telemetry_check.check sink = [])

(* ---------- The disabled path ---------- *)

let test_disabled_sink () =
  let sink = Sink.null () in
  let attrs_hit = ref false and record_hit = ref false in
  let r =
    Sink.with_span sink "x"
      ~attrs:(fun () ->
        attrs_hit := true;
        [])
      ~record:(fun _ _ -> record_hit := true)
      (fun () -> 7)
  in
  check_int "result passes through" 7 r;
  check_bool "enabled" false (Sink.enabled sink);
  check_int "nothing recorded" 0 (Sink.span_count sink);
  check_bool "attrs thunk never evaluated" false !attrs_hit;
  check_bool "record never called" false !record_hit;
  check_int "vacuously clean" 0 (List.length (A.Telemetry_check.check sink))

let test_disabled_sink_no_alloc () =
  (* The overhead contract: a disabled sink is one boolean test — the
     instrumented loop below must not allocate. Closures are hoisted so
     the measurement sees only with_span's own cost. *)
  let sink = Sink.null () in
  let body () = 0 in
  ignore (Sink.with_span sink "hot" body);
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    ignore (Sink.with_span sink "hot" body)
  done;
  let dw = Gc.minor_words () -. w0 in
  check_bool
    (Printf.sprintf "disabled with_span allocates nothing (%.0f words)" dw)
    true (dw < 256.0)

(* ---------- Exporters ---------- *)

let busy_sink () =
  let sink = Sink.create ~enabled:true () in
  let m = Sink.metrics sink in
  Sink.with_span sink "query" (fun () ->
      Sink.with_span sink "execute_edge"
        ~attrs:(fun () -> [ ("edge", "3") ])
        ~record:(fun m d -> Metrics.observe m.Metrics.edge_execution_ns d)
        (fun () -> ());
      Sink.with_span sink "chain_round" (fun () -> ()));
  Metrics.incr m.Metrics.queries_served;
  Metrics.incr ~by:5 m.Metrics.relation_cache_hits;
  Metrics.set m.Metrics.cache_resident_bytes 4096.0;
  sink

(* Task spans live on per-worker lanes: a pool task's closed span never
   interleaves with the owner's with_span tree, so RX401 nesting is
   checked per lane and a lane-1 span overlapping lane 0 is legal. *)
let test_task_span_lanes () =
  let sink = Sink.create ~enabled:true () in
  Sink.with_span sink "edge" (fun () ->
      (* Two "workers" report overlapping windows inside the owner span —
         exactly what a partitioned kernel produces. *)
      Sink.add_task_span sink ~lane:1 ~start_ns:10L ~dur_ns:100L
        ~attrs:[ ("part", "0") ] "partition_task";
      Sink.add_task_span sink ~lane:2 ~start_ns:15L ~dur_ns:100L
        ~attrs:[ ("part", "1") ] "partition_task");
  check_int "three spans closed" 3 (Sink.span_count sink);
  let lanes =
    List.map (fun s -> (s.Sink.name, s.Sink.lane)) (Sink.spans_chronological sink)
  in
  check_bool "owner span on lane 0" true (List.mem ("edge", 0) lanes);
  check_bool "task spans on worker lanes" true
    (List.mem ("partition_task", 1) lanes && List.mem ("partition_task", 2) lanes);
  check_int "per-lane nesting is RX4xx clean" 0
    (List.length (A.Telemetry_check.check sink));
  (* The Chrome export maps each lane to its own synthetic tid... *)
  let json = Export.chrome_trace [ (1, sink) ] in
  check_bool "worker lanes get named threads" true
    (contains json "session-1-worker-0" && contains json "session-1-worker-1");
  (* ...and the result is still a valid trace. *)
  (match Rox_util.Minijson.parse json with
   | Error e -> Alcotest.failf "lane trace does not parse: %s" e
   | Ok j -> (
     match Export.validate_chrome j with
     | Error e -> Alcotest.failf "lane trace fails validation: %s" e
     | Ok n -> check_int "one X event per span" 3 n))

let test_task_span_cap () =
  let sink = Sink.create ~cap:1 ~enabled:true () in
  Sink.with_span sink "owner" (fun () -> ());
  Sink.add_task_span sink ~lane:1 ~start_ns:0L ~dur_ns:1L "late";
  check_int "cap applies to task spans too" 1 (Sink.span_count sink);
  check_int "dropped task span counted" 1 (Sink.dropped sink)

let test_chrome_trace_roundtrip () =
  let sink = busy_sink () in
  let json = Export.chrome_trace ~process_name:"rox-test" [ (1, sink) ] in
  match Rox_util.Minijson.parse json with
  | Error e -> Alcotest.failf "emitted trace does not parse: %s" e
  | Ok j -> (
    match Export.validate_chrome j with
    | Error e -> Alcotest.failf "emitted trace fails validation: %s" e
    | Ok n -> check_int "one X event per span" (Sink.span_count sink) n)

let test_chrome_trace_truncation_marker () =
  let sink = Sink.create ~cap:1 ~enabled:true () in
  for _ = 1 to 3 do
    Sink.with_span sink "s" (fun () -> ())
  done;
  let json = Export.chrome_trace [ (0, sink) ] in
  check_bool "instant event marks the drop" true (contains json "\"ph\": \"i\"")

let test_prometheus_exposition () =
  let sink = busy_sink () in
  let text = Export.prometheus (Sink.metrics sink) in
  let has s = contains text s in
  check_bool "counter line" true (has "rox_queries_served_total 1");
  check_bool "hits line" true (has "rox_relation_cache_hits_total 5");
  check_bool "gauge line" true (has "rox_cache_resident_bytes 4096");
  check_bool "histogram count" true (has "rox_edge_execution_duration_ns_count 1");
  check_bool "+Inf ladder top" true (has "le=\"+Inf\"");
  check_bool "help text present" true (has "# HELP rox_queries_served_total");
  check_bool "type lines present" true (has "# TYPE rox_cache_resident_bytes gauge")

let test_profile_summary () =
  let sink = busy_sink () in
  let m = Sink.metrics sink in
  Metrics.incr ~by:400 m.Metrics.sampling_time_ns;
  Metrics.incr ~by:600 m.Metrics.execution_time_ns;
  let text = Export.profile ~work_units:(40, 60) m in
  let has s = contains text s in
  check_bool "sampling row" true (has "sampling");
  check_bool "execution row" true (has "execution");
  check_bool "work units shown" true (has "work units")

(* ---------- Budget message units (satellite: Cost.budget_message) ---------- *)

let test_budget_message_units () =
  let open Rox_algebra.Cost in
  check_string "deadline unit" "ms" (budget_unit Deadline);
  check_string "sampling unit" "work units" (budget_unit Sampled_rows);
  (match budget_message (Budget_exceeded { reason = Deadline; spent = 1503; budget = 1500 }) with
  | None -> Alcotest.fail "deadline message missing"
  | Some msg ->
    check_string "deadline message"
      "wall-clock deadline exceeded: spent 1503 ms, budget 1500 ms" msg);
  (match budget_message (Budget_exceeded { reason = Sampled_rows; spent = 120; budget = 100 }) with
  | None -> Alcotest.fail "sampling message missing"
  | Some msg ->
    check_string "sampling message"
      "sampled-rows budget exceeded: spent 120 work units, budget 100 work units" msg);
  check_bool "other exceptions pass" true (budget_message Exit = None)

(* ---------- Trace truncation marker (satellite: bounded Trace.t) ---------- *)

let test_trace_truncation () =
  let tr = Trace.create ~cap:3 () in
  for i = 1 to 5 do
    Trace.emit tr (Trace.Edge_weighted { edge = i; weight = 1.0 })
  done;
  check_int "dropped" 2 (Trace.dropped tr);
  let evs = Trace.events tr in
  check_int "kept + marker" 4 (List.length evs);
  (match List.rev evs with
  | Trace.Truncated { dropped } :: _ -> check_int "marker dropped count" 2 dropped
  | _ -> Alcotest.fail "last event must be the Truncated marker");
  (* The marker is synthesized, never stored: further emits past the cap
     only bump the counter. *)
  Trace.emit tr (Trace.Edge_weighted { edge = 9; weight = 1.0 });
  check_int "dropped grows" 3 (Trace.dropped tr);
  check_int "events stable" 4 (List.length (Trace.events tr))

(* ---------- RX403: trace/span cross-check ---------- *)

let test_edge_span_matching () =
  let tr = Trace.create () in
  Trace.emit tr (Trace.Edge_executed { edge = 7; order = 0; pairs = 1; rel_rows = 1 });
  (* Uncovered edge: an enabled sink with no execute_edge span. *)
  let bare = Sink.create ~enabled:true () in
  Sink.with_span bare "query" (fun () -> ());
  let ds = A.Telemetry_check.check ~trace:tr bare in
  check_bool "RX403 fires for uncovered edge" true
    (List.exists (fun d -> d.A.Diagnostic.code = "RX403") ds);
  (* Covered edge: matching span with the ("edge", id) attribute. *)
  let covered = Sink.create ~enabled:true () in
  Sink.with_span covered "execute_edge"
    ~attrs:(fun () -> [ ("edge", "7") ])
    (fun () -> ());
  check_int "covered edge is clean" 0
    (List.length (A.Telemetry_check.check ~trace:tr covered));
  (* Truncated trace: the cross-check is skipped, not misfired. *)
  let small = Trace.create ~cap:1 () in
  Trace.emit small (Trace.Chain_started { source = 0; min_edge = 1 });
  Trace.emit small (Trace.Edge_executed { edge = 7; order = 0; pairs = 1; rel_rows = 1 });
  check_bool "truncated trace skips RX403" true
    (not
       (List.exists
          (fun d -> d.A.Diagnostic.code = "RX403")
          (A.Telemetry_check.check ~trace:small bare)))

(* ---------- add_into and the 2-domain aggregate ---------- *)

let test_add_into () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr ~by:3 a.Metrics.queries_served;
  Metrics.incr ~by:4 b.Metrics.queries_served;
  Metrics.observe a.Metrics.query_ns 100;
  Metrics.observe b.Metrics.query_ns 100_000;
  Metrics.set a.Metrics.cache_resident_bytes 10.0;
  Metrics.set b.Metrics.cache_resident_bytes 99.0;
  Metrics.add_into ~into:a b;
  check_int "counters add" 7 a.Metrics.queries_served.Metrics.c_value;
  check_int "histogram counts add" 2 a.Metrics.query_ns.Metrics.h_count;
  check_int "histogram sums add" 100_100 a.Metrics.query_ns.Metrics.h_sum;
  check_int "gauges take max" 99 (int_of_float a.Metrics.cache_resident_bytes.Metrics.g_value);
  check_int "source untouched" 4 b.Metrics.queries_served.Metrics.c_value

let test_two_domain_aggregate () =
  (* The serving pattern: each domain runs sessions with per-session
     sinks, absorbing every registry into one process aggregate. The
     per-domain totals must sum exactly to the aggregate. *)
  let agg = Aggregate.create () in
  let work seed () =
    let served = ref 0 and observed = ref 0 and sum = ref 0 in
    let rng = Rox_util.Xoshiro.create seed in
    for _ = 1 to 50 do
      let sink = Sink.create ~enabled:true () in
      let m = Sink.metrics sink in
      let n = 1 + Rox_util.Xoshiro.int rng 4 in
      for _ = 1 to n do
        Sink.with_span sink "query"
          ~record:(fun m d -> Metrics.observe m.Metrics.query_ns d)
          (fun () -> Metrics.incr m.Metrics.queries_served)
      done;
      served := !served + n;
      observed := !observed + n;
      sum := !sum + m.Metrics.query_ns.Metrics.h_sum;
      Aggregate.absorb agg m
    done;
    (!served, !observed, !sum)
  in
  let other = Domain.spawn (work 1) in
  let s0, o0, n0 = work 2 () in
  let s1, o1, n1 = Domain.join other in
  Aggregate.with_metrics agg (fun m ->
      check_int "queries_served sums across domains" (s0 + s1)
        m.Metrics.queries_served.Metrics.c_value;
      check_int "histogram count sums across domains" (o0 + o1)
        m.Metrics.query_ns.Metrics.h_count;
      check_int "histogram sum sums across domains" (n0 + n1)
        m.Metrics.query_ns.Metrics.h_sum)

(* ---------- End-to-end: a real run under an enabled sink ---------- *)

let test_session_run_records () =
  let engine = Rox_storage.Engine.create () in
  ignore
    (Rox_workload.Xmark.generate
       ~params:(Rox_workload.Xmark.scaled 0.02)
       engine ~uri:"xmark.xml"
      : Rox_storage.Engine.docref);
  let compiled =
    Rox_xquery.Compile.compile_string engine
      {|let $d := doc("xmark.xml")
for $o in $d//open_auction[.//current/text() < 145],
    $p in $d//person[.//province]
where $o//bidder//personref/@person = $p/@id
return $o|}
  in
  let sink = Sink.create ~enabled:true () in
  let trace = Trace.create () in
  let session = Rox_core.Session.create ~trace ~telemetry:sink () in
  let off = Rox_core.Session.create () in
  let a = fst (Rox_core.Optimizer.answer session compiled) in
  let b = fst (Rox_core.Optimizer.answer off compiled) in
  check_bool "telemetry does not change answers" true (a = b);
  let m = Sink.metrics sink in
  check_int "one query served" 1 m.Metrics.queries_served.Metrics.c_value;
  check_bool "edges were executed" true (m.Metrics.edges_executed.Metrics.c_value > 0);
  check_bool "edge spans recorded" true
    (List.exists (fun s -> s.Sink.name = "execute_edge") (Sink.spans sink));
  check_int "verifier clean on a real run" 0
    (List.length (A.Telemetry_check.check ~trace sink))

(* ---------- Quantile interpolation (satellite: upper-bound bias fix) --- *)

let test_quantile_interpolation () =
  (* A lone sample in bucket 9 ([512, 1024)): the rank interpolates
     log-linearly across the bucket, so q=0 pins to the lower bound 2^9
     and q=1 to the next power of two — never the old inclusive upper
     bound 1023. *)
  let one = Metrics.histogram "q" "interpolation probe" in
  Metrics.observe one 1000;
  check_int "q0 pins to 2^i" 512 (int_of_float (Metrics.quantile one 0.0));
  check_int "q1 pins to 2^(i+1)" 1024 (int_of_float (Metrics.quantile one 1.0));
  let mid = Metrics.quantile one 0.5 in
  check_bool "q0.5 lands strictly inside the bucket" true
    (mid > 512.0 && mid < 1024.0);
  (* Bucket 0 has no width to interpolate: it always reads 1.0. *)
  let low = Metrics.histogram "q" "bucket-0 probe" in
  List.iter (fun v -> Metrics.observe low v) [ 0; 1; 1 ];
  List.iter
    (fun q ->
      check_int
        (Printf.sprintf "bucket 0 pins q=%.2f" q)
        1
        (int_of_float (Metrics.quantile low q)))
    [ 0.0; 0.5; 1.0 ];
  (* A rank at the top of a sparse holding bucket resolves to that
     bucket's 2^(i+1), skipping empty buckets on the way. *)
  let multi = Metrics.histogram "q" "sparse probe" in
  List.iter (fun v -> Metrics.observe multi v) [ 2; 2; 8 ];
  check_int "p100 tops out the holding bucket" 16
    (int_of_float (Metrics.quantile multi 1.0));
  let p50 = Metrics.quantile multi 0.5 in
  check_bool "p50 interpolates inside [2,4)" true (p50 >= 2.0 && p50 < 4.0);
  (* Monotone in q — the property the adaptive threshold leans on. *)
  let spread = Metrics.histogram "q" "monotone probe" in
  List.iter (fun v -> Metrics.observe spread v) [ 1; 3; 9; 120; 5000; 70000 ];
  let last = ref 0.0 in
  for step = 0 to 20 do
    let v = Metrics.quantile spread (float_of_int step /. 20.0) in
    check_bool "quantile is monotone in q" true (v >= !last);
    last := v
  done

(* ---------- Prometheus label escaping (satellite: hostile tenants) ----- *)

let test_escape_label () =
  check_string "backslash" {|a\\b|} (Export.escape_label {|a\b|});
  check_string "quote" {|say \"hi\"|} (Export.escape_label {|say "hi"|});
  check_string "newline" {|line1\nline2|} (Export.escape_label "line1\nline2");
  check_string "clean ids pass through" "tenant-1.a"
    (Export.escape_label "tenant-1.a");
  check_string "all three at once" "\\\\\\\"\\n" (Export.escape_label "\\\"\n")

(* ---------- Flight recorder -------------------------------------------- *)

let mk_record ?(tenant = "local") ?(outcome = Recorder.Executed)
    ?(status = "ok") ?(latency_ns = 1_000) rc () =
  {
    Recorder.trace_id = Recorder.next_trace_id rc;
    fingerprint = "fp0123456789";
    tenant;
    plan_digest = Recorder.plan_digest [ 1; 2 ];
    plan_edges = 2;
    latency_ns;
    queue_ns = 0;
    sampling_units = 5;
    execution_units = 7;
    cache_hits = 1;
    cache_misses = 2;
    outcome;
    status;
    edge_ns = [ (1, 400); (2, 600) ];
  }

let test_recorder_ring_wrap () =
  let rc = Recorder.create ~cap:4 ~head_every:0 () in
  for _ = 1 to 10 do
    ignore (Recorder.observe rc (mk_record rc ()) : Recorder.reason option)
  done;
  check_int "records counts every append" 10 (Recorder.records rc);
  check_int "dropped = observed - cap" 6 (Recorder.dropped rc);
  let recent = Recorder.recent rc 100 in
  check_int "ring keeps cap survivors" 4 (List.length recent);
  Alcotest.(check (list int))
    "survivors are the newest, newest first" [ 10; 9; 8; 7 ]
    (List.map (fun r -> r.Recorder.trace_id) recent);
  check_int "recent honours n" 2 (List.length (Recorder.recent rc 2));
  (* RX701: the record count must balance the submissions. *)
  Alcotest.(check (list string)) "RX701 clean when balanced" []
    (List.map
       (fun d -> d.A.Diagnostic.code)
       (A.Recorder_check.check ~submitted:10 rc));
  check_bool "RX701 fires on imbalance" true
    (List.exists
       (fun d -> d.A.Diagnostic.code = "RX701")
       (A.Recorder_check.check ~submitted:11 rc))

let test_recorder_threshold_monotone () =
  let rc =
    Recorder.create ~warmup:8 ~quantile:0.5 ~floor_ns:1000 ~head_every:0 ()
  in
  check_int "unarmed threshold is the floor" 1000 (Recorder.threshold_ns rc);
  for _ = 1 to 7 do
    ignore (Recorder.observe rc (mk_record rc ~latency_ns:1_000_000 ()))
  done;
  check_int "below warmup still the floor" 1000 (Recorder.threshold_ns rc);
  ignore (Recorder.observe rc (mk_record rc ~latency_ns:1_000_000 ()));
  let armed = Recorder.threshold_ns rc in
  check_bool "warmup arms the quantile above the floor" true (armed > 1000);
  (* Feeding ever-slower batches can only raise the bar: the median of a
     right-shifted mass never moves left. *)
  let last = ref armed in
  List.iter
    (fun lat ->
      for _ = 1 to 8 do
        ignore (Recorder.observe rc (mk_record rc ~latency_ns:lat ()))
      done;
      let now = Recorder.threshold_ns rc in
      check_bool "threshold never decreases under slower load" true
        (now >= !last);
      last := now)
    [ 2_000_000; 8_000_000; 32_000_000 ]

let mk_span ?(name = "query") ?(start_ns = 0L) ?(dur_ns = 10L) ?(depth = 0) () =
  { Sink.name; start_ns; dur_ns; depth; lane = 0; attrs = [] }

let test_recorder_retention () =
  (* warmup never reached and head sampling off: only Errored and the
     floor-crossing Slow path can retain. *)
  let rc =
    Recorder.create ~retain_cap:2 ~head_every:0 ~floor_ns:1000 ~warmup:1000 ()
  in
  let err = mk_record rc ~status:"deadline" ~latency_ns:1 () in
  (match Recorder.observe rc err with
   | Some Recorder.Errored -> ()
   | _ -> Alcotest.fail "errored must retain whatever its latency");
  let slow = mk_record rc ~latency_ns:5_000 () in
  (match Recorder.observe rc slow with
   | Some Recorder.Slow -> ()
   | _ -> Alcotest.fail "latency past the floor must retain");
  (match
     Recorder.observe rc
       (mk_record rc ~outcome:Recorder.Rejected ~latency_ns:5_000 ())
   with
   | None -> ()
   | Some _ -> Alcotest.fail "a rejection's latency is not service time");
  (match Recorder.observe rc (mk_record rc ~latency_ns:10 ()) with
   | None -> ()
   | Some _ -> Alcotest.fail "fast ok request must not retain");
  (* Retention storage: addressable by id, FIFO-evicted, re-retain no-op. *)
  Recorder.retain rc err Recorder.Errored [ mk_span ~name:"first" () ];
  Recorder.retain rc slow Recorder.Slow [ mk_span () ];
  check_int "two retained" 2 (Recorder.retained_count rc);
  (match Recorder.find_trace rc err.Recorder.trace_id with
   | Some (r, Recorder.Errored, [ s ]) ->
     check_int "record rides along" err.Recorder.trace_id r.Recorder.trace_id;
     check_string "spans ride along" "first" s.Sink.name
   | _ -> Alcotest.fail "errored trace must be addressable");
  Recorder.retain rc err Recorder.Slow [ mk_span ~name:"dupe" () ];
  (match Recorder.find_trace rc err.Recorder.trace_id with
   | Some (_, Recorder.Errored, [ s ]) ->
     check_string "re-retain is a no-op" "first" s.Sink.name
   | _ -> Alcotest.fail "re-retain must keep the original");
  let third = mk_record rc ~status:"busy" ~latency_ns:1 () in
  ignore (Recorder.observe rc third);
  Recorder.retain rc third Recorder.Errored [ mk_span () ];
  check_int "retain_cap holds" 2 (Recorder.retained_count rc);
  check_bool "oldest is FIFO-evicted" true
    (Recorder.find_trace rc err.Recorder.trace_id = None);
  check_bool "newest survives" true
    (Recorder.find_trace rc third.Recorder.trace_id <> None);
  check_bool "unknown id is None" true (Recorder.find_trace rc 999_999 = None);
  (* Retained well-nested spans keep RX702 quiet. *)
  Alcotest.(check (list string)) "RX702 clean" []
    (List.map (fun d -> d.A.Diagnostic.code) (A.Recorder_check.check rc))

let test_recorder_head_sampling () =
  (* Slow retention pushed out of reach: only the 1-in-4 head sample by
     trace id fires. Ids are 1-based, so the 4th and 8th records hit. *)
  let rc = Recorder.create ~head_every:4 ~floor_ns:max_int ~warmup:max_int () in
  let hits = ref [] in
  for _ = 1 to 8 do
    let r = mk_record rc () in
    match Recorder.observe rc r with
    | Some Recorder.Head_sampled -> hits := r.Recorder.trace_id :: !hits
    | Some _ -> Alcotest.fail "only head sampling can fire here"
    | None -> ()
  done;
  Alcotest.(check (list int)) "1-in-4 by trace id" [ 4; 8 ] (List.rev !hits)

let test_recorder_tenant_bound () =
  let rc = Recorder.create ~tenant_cap:2 ~head_every:0 () in
  List.iter
    (fun tenant -> ignore (Recorder.observe rc (mk_record rc ~tenant ())))
    [ "a"; "b"; "c"; "d"; "a" ];
  (* Four distinct tenants, cap 2: c and d fold into "other". *)
  check_int "registry bounded to cap + other" 3 (Recorder.tenant_count rc);
  ignore (Recorder.observe rc (mk_record rc ~tenant:"other" ~status:"busy" ()));
  let stats = Recorder.tenant_stats rc in
  Alcotest.(check (list (pair string int)))
    "first-seen order, overflow folded"
    [ ("a", 2); ("b", 1); ("other", 3) ]
    (List.map (fun s -> (s.Recorder.tenant, s.Recorder.requests)) stats);
  let other = List.find (fun s -> s.Recorder.tenant = "other") stats in
  check_int "errors land on the overflow series" 1 other.Recorder.errors;
  check_int "latency histogram follows" 3
    other.Recorder.serve_ns.Metrics.h_count;
  (* The bound holds under a flood, and RX703 agrees. *)
  for i = 1 to 50 do
    ignore
      (Recorder.observe rc (mk_record rc ~tenant:(Printf.sprintf "t%d" i) ()))
  done;
  check_int "flood cannot grow the registry" 3 (Recorder.tenant_count rc);
  Alcotest.(check (list string)) "RX703 clean" []
    (List.map (fun d -> d.A.Diagnostic.code) (A.Recorder_check.check rc))

let test_recorder_hostile_tenant_label () =
  let rc = Recorder.create ~head_every:0 () in
  let hostile = "evil\"tenant\\x\nboom" in
  ignore (Recorder.observe rc (mk_record rc ~tenant:hostile ()));
  let page = Recorder.prometheus rc in
  check_bool "escaped label emitted" true
    (contains page
       "rox_tenant_requests_total{tenant=\"evil\\\"tenant\\\\x\\nboom\"} 1");
  (* The raw quote/newline never reach the page unescaped: every line
     stays a single well-formed sample. *)
  check_bool "no unescaped quote" true (not (contains page "evil\"tenant"));
  String.split_on_char '\n' page
  |> List.iter (fun line ->
         check_bool "no line is a bare continuation" true
           (line = "" || String.length line > 1))

let test_recorder_json_shape () =
  let module J = Rox_util.Minijson in
  let rc = Recorder.create () in
  let r = mk_record rc ~latency_ns:2_000_000 ~status:"ok" () in
  let s = J.to_string (Recorder.json_of_record ~reason:Recorder.Slow r) in
  let j =
    match J.parse s with
    | Ok v -> v
    | Error m -> Alcotest.failf "slow-log line must be valid JSON: %s" m
  in
  let num k = Option.bind (J.member k j) J.to_num_opt in
  let str k = Option.bind (J.member k j) J.to_string_opt in
  check_bool "trace_id" true (num "trace_id" = Some (float_of_int r.Recorder.trace_id));
  check_bool "fingerprint" true (str "fingerprint" = Some "fp0123456789");
  check_bool "latency in ms" true (num "latency_ms" = Some 2.0);
  check_bool "outcome label" true (str "outcome" = Some "executed");
  check_bool "retained reason" true (str "retained" = Some "slow");
  (match Option.bind (J.member "edges" j) J.to_list_opt with
   | Some [ e1; _ ] ->
     check_bool "edge id" true (Option.bind (J.member "edge" e1) J.to_num_opt = Some 1.0);
     check_bool "edge ns" true (Option.bind (J.member "ns" e1) J.to_num_opt = Some 400.0)
   | _ -> Alcotest.fail "edges must be a 2-element array");
  (* Without a reason the retained field is null, not absent — RECENT
     consumers can rely on the key. *)
  let bare = J.to_string (Recorder.json_of_record r) in
  (match J.parse bare with
   | Ok v -> check_bool "retained null" true (J.member "retained" v = Some J.Null)
   | Error m -> Alcotest.failf "bare line must parse: %s" m)

let test_recorder_slow_log_file () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rox_recorder_log_%d.jsonl" (Unix.getpid ()))
  in
  (try Sys.remove path with Sys_error _ -> ());
  let rc = Recorder.create ~slow_log:path ~slow_ms:1 ~head_every:0 () in
  ignore (Recorder.observe rc (mk_record rc ~latency_ns:2_000_000 ()));
  ignore (Recorder.observe rc (mk_record rc ~latency_ns:10 ()));
  ignore (Recorder.observe rc (mk_record rc ~latency_ns:10 ~status:"busy" ()));
  check_int "slow + errored logged, fast skipped" 2 (Recorder.log_lines rc);
  Recorder.close rc;
  Recorder.close rc (* idempotent *);
  ignore (Recorder.observe rc (mk_record rc ~latency_ns:2_000_000 ()));
  check_int "closed log stops counting" 2 (Recorder.log_lines rc);
  check_int "but records keep flowing" 4 (Recorder.records rc);
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  check_int "file carries one line per logged record" 2 (List.length !lines);
  List.iter
    (fun line ->
      match Rox_util.Minijson.parse line with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "slow-log line must parse: %s" m)
    !lines

let suite =
  [
    ("bucket boundaries", `Quick, test_bucket_boundaries);
    prop_bucket_contains;
    ("observe and quantile", `Quick, test_observe_and_quantile);
    ("span nesting", `Quick, test_span_nesting);
    ("span exception safety", `Quick, test_span_exception_safety);
    ("span buffer cap", `Quick, test_span_cap);
    prop_random_nesting_well_formed;
    ("disabled sink records nothing", `Quick, test_disabled_sink);
    ("disabled sink allocates nothing", `Quick, test_disabled_sink_no_alloc);
    ("task-span lanes", `Quick, test_task_span_lanes);
    ("task-span cap", `Quick, test_task_span_cap);
    ("chrome trace round-trip", `Quick, test_chrome_trace_roundtrip);
    ("chrome trace truncation marker", `Quick, test_chrome_trace_truncation_marker);
    ("prometheus exposition", `Quick, test_prometheus_exposition);
    ("profile summary", `Quick, test_profile_summary);
    ("budget message units", `Quick, test_budget_message_units);
    ("trace truncation marker", `Quick, test_trace_truncation);
    ("RX403 edge/span matching", `Quick, test_edge_span_matching);
    ("add_into merge", `Quick, test_add_into);
    ("2-domain aggregate sum", `Quick, test_two_domain_aggregate);
    ("real run under enabled sink", `Quick, test_session_run_records);
    ("quantile log-interpolation pins", `Quick, test_quantile_interpolation);
    ("prometheus label escaping", `Quick, test_escape_label);
    ("recorder: ring wraparound + RX701", `Quick, test_recorder_ring_wrap);
    ("recorder: adaptive threshold monotone", `Quick, test_recorder_threshold_monotone);
    ("recorder: retention reasons + FIFO", `Quick, test_recorder_retention);
    ("recorder: head sampling 1-in-N", `Quick, test_recorder_head_sampling);
    ("recorder: tenant cardinality bound", `Quick, test_recorder_tenant_bound);
    ("recorder: hostile tenant labels", `Quick, test_recorder_hostile_tenant_label);
    ("recorder: slow-log JSON shape", `Quick, test_recorder_json_shape);
    ("recorder: slow-log file lifecycle", `Quick, test_recorder_slow_log_file);
  ]

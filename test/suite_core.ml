open Rox_storage
open Rox_xquery
open Rox_joingraph
open Rox_core
open Helpers

let xmark_engine ?(factor = 0.02) () =
  let engine = Engine.create () in
  let params = Rox_workload.Xmark.scaled factor in
  ignore (Rox_workload.Xmark.generate ~params engine ~uri:"xmark.xml");
  engine

let q1 threshold op =
  Printf.sprintf
    {|let $d := doc("xmark.xml")
for $o in $d//open_auction[.//current/text() %s %d],
    $p in $d//person[.//province],
    $i in $d//item[./quantity = 1]
where $o//bidder//personref/@person = $p/@id and
      $o//itemref/@item = $i/@id
return $o|}
    op threshold

let fig1_query =
  {|let $r := doc("xmark.xml")
for $a in $r//open_auction[./reserve]/bidder//personref,
    $b in $r//person[.//education]
where $a/@person = $b/@id
return $a|}

let answers_match engine compiled answer =
  let naive = Naive.eval_query engine compiled.Compile.query in
  let rox = Array.to_list answer |> List.map (fun p -> (0, p)) in
  (* Both XQuery-ordered sequences must agree exactly (order + duplicity),
     modulo doc ids which are all 0 here. *)
  rox = naive

(* ---------- Optimizer end-to-end vs naive ---------- *)

let test_rox_q1_correct () =
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine (q1 145 "<") in
  let answer, _ = Optimizer.answer_default compiled in
  check_bool "ROX = naive on Q1" true (answers_match engine compiled answer)

let test_rox_qm1_correct () =
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine (q1 145 ">") in
  let answer, _ = Optimizer.answer_default compiled in
  check_bool "ROX = naive on Qm1" true (answers_match engine compiled answer)

let test_rox_fig1_correct () =
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine fig1_query in
  let answer, _ = Optimizer.answer_default compiled in
  check_bool "ROX = naive on Fig 1 query" true (answers_match engine compiled answer)

let test_rox_nonempty () =
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine (q1 145 "<") in
  let answer, _ = Optimizer.answer_default compiled in
  check_bool "answer nonempty at this scale" true (Array.length answer > 0)

let test_rox_dblp_correct () =
  let engine = Engine.create () in
  let params = { Rox_workload.Dblp.default_gen with reduction = 400 } in
  ignore
    (Rox_workload.Dblp.load ~params engine
       (List.map Rox_workload.Dblp.find_venue [ "VLDB"; "ICDE"; "SIGMOD"; "EDBT" ]));
  let q = Rox_workload.Dblp.query_for [ "VLDB.xml"; "ICDE.xml"; "SIGMOD.xml"; "EDBT.xml" ] in
  let compiled = Compile.compile_string engine q in
  let answer, _ = Optimizer.answer_default compiled in
  let naive = Naive.eval_query engine compiled.Compile.query in
  (* Doc ids vary here: compare (doc, pre) sequences. The return vertex is
     in doc 0 (VLDB). *)
  check_bool "ROX = naive on DBLP" true
    (List.map (fun p -> (0, p)) (Array.to_list answer) = naive)

let test_rox_deterministic () =
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine (q1 145 "<") in
  let r1 = Optimizer.run_default compiled in
  let r2 = Optimizer.run_default compiled in
  check_bool "same edge order" true (r1.Optimizer.edge_order = r2.Optimizer.edge_order);
  check_int "same work" (Rox_algebra.Cost.total r1.Optimizer.counter)
    (Rox_algebra.Cost.total r2.Optimizer.counter)

let test_rox_seed_sensitivity () =
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine (q1 145 "<") in
  let s1 = Session.create ~config:{ (Session.default_config ()) with Session.seed = 1 } () in
  let a1, _ = Optimizer.answer s1 compiled in
  let s2 = Session.create ~config:{ (Session.default_config ()) with Session.seed = 99 } () in
  let a2, _ = Optimizer.answer s2 compiled in
  check_bool "answers agree across seeds" true (a1 = a2)

(* ---------- Ablations stay correct ---------- *)

let ablation_correct config () =
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine (q1 145 "<") in
  let answer, _ = Optimizer.answer (Session.create ~config ()) compiled in
  check_bool "ablated optimizer still correct" true (answers_match engine compiled answer)

let test_ablation_greedy () =
  ablation_correct { (Session.default_config ()) with Session.use_chain = false } ()

let test_ablation_noresample () =
  ablation_correct { (Session.default_config ()) with Session.resample = false } ()

let test_ablation_fixed_cutoff () =
  ablation_correct { (Session.default_config ()) with Session.grow_cutoff = false } ()

let test_tau_variants () =
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine (q1 145 "<") in
  List.iter
    (fun tau ->
      let config = { (Session.default_config ()) with Session.tau } in
      let answer, _ = Optimizer.answer (Session.create ~config ()) compiled in
      check_bool (Printf.sprintf "correct at tau=%d" tau) true
        (answers_match engine compiled answer))
    [ 25; 100; 400 ]

(* ---------- Correlation adaptivity (the Fig 3 behaviour) ---------- *)

let bidder_edge_position engine src =
  let compiled = Compile.compile_string engine src in
  let result = Optimizer.run_default compiled in
  let graph = compiled.Compile.graph in
  let label e =
    let e = Graph.edge graph e in
    (Vertex.label (Graph.vertex graph e.Edge.v1), Vertex.label (Graph.vertex graph e.Edge.v2))
  in
  let order = List.map label result.Optimizer.edge_order in
  let rec pos i = function
    | [] -> None
    | (a, b) :: rest ->
      if a = "open_auction" && b = "bidder" then Some i else pos (i + 1) rest
  in
  (pos 0 order, List.length order)

let test_correlation_defers_bidders () =
  (* Under Q1 (< threshold) auctions have few bidders; under Qm1 (>)
     many. In both cases ROX must not explode: the bidder expansion of the
     dense side should happen late (after reductions), and both queries
     must finish with bounded work. The sharper check: work on Qm1's plan
     must stay within a small factor of Q1's despite ~3x denser bidders. *)
  let engine = xmark_engine ~factor:0.05 () in
  let c1 = Compile.compile_string engine (q1 145 "<") in
  let cm1 = Compile.compile_string engine (q1 145 ">") in
  let r1 = Optimizer.run_default c1 in
  let rm1 = Optimizer.run_default cm1 in
  let w1 = Rox_algebra.Cost.total r1.Optimizer.counter in
  let wm1 = Rox_algebra.Cost.total rm1.Optimizer.counter in
  check_bool "both complete" true (w1 > 0 && wm1 > 0);
  let pos1, len1 = bidder_edge_position engine (q1 145 "<") in
  let posm, lenm = bidder_edge_position engine (q1 145 ">") in
  check_bool "bidder edge executed in both" true (pos1 <> None && posm <> None);
  (* The dense-bidder query defers the open_auction->bidder expansion at
     least as late (relative position) as the sparse one. *)
  let rel p l = float_of_int (Option.get p) /. float_of_int l in
  check_bool "dense side not earlier" true (rel posm lenm >= rel pos1 len1 -. 0.34)

(* ---------- Chain sampling on a planted-correlation graph (Fig 2) ---------- *)

(* doc: r contains 50 'a' elements; each a has a 'b' child; only a few b's
   have a 'c' child, and exactly those c's have a 'd' child. The edge
   (a,b) looks cheap, but the chain b->c is hyper-selective; chain sampling
   should discover the segment through c. *)
let planted_engine () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<r>";
  for i = 0 to 49 do
    Buffer.add_string buf "<a><b>";
    if i < 3 then Buffer.add_string buf "<c><d/></c>";
    Buffer.add_string buf "</b></a>"
  done;
  Buffer.add_string buf "</r>";
  engine_of_xml (Buffer.contents buf) |> fst

let test_chain_finds_selective_path () =
  let engine = planted_engine () in
  let q =
    {|for $a in doc("doc0.xml")//a[./b//c[./d]]
return $a|}
  in
  let compiled = Compile.compile_string engine q in
  let trace = Trace.create () in
  let answer, _ = Optimizer.answer (Session.create ~trace ()) compiled in
  check_int "three selective results" 3 (Array.length answer);
  (* Chain sampling ran and chose some segment. *)
  let chose =
    List.exists (function Trace.Chain_chosen _ -> true | _ -> false) (Trace.events trace)
  in
  check_bool "chain sampling engaged" true chose

(* ---------- State / Estimate units ---------- *)

let test_state_init_and_weights () =
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine (q1 145 "<") in
  let state = State.create (Session.create ()) engine compiled.Compile.graph in
  let graph = compiled.Compile.graph in
  (* Element vertex init works, bare-range text vertex does not. *)
  Array.iter
    (fun (v : Vertex.t) ->
      let expect = Exec.can_index_init v in
      check_bool ("init " ^ Vertex.label v) expect
        (State.init_vertex_from_index state v.Vertex.id))
    (Graph.vertices graph);
  (* Edges with a sampled endpoint get a finite weight; edges between two
     unsampled vertices (e.g. @person == @id) stay unweighted — exactly the
     paper's "will stay unweighted for now". *)
  List.iter
    (fun e ->
      let sampled v = State.sample state v <> None in
      match Estimate.edge_weight state e with
      | Some w ->
        check_bool "weight finite" true (w >= 0.0 && w < infinity);
        check_bool "had a sampled endpoint" true (sampled e.Edge.v1 || sampled e.Edge.v2)
      | None ->
        check_bool "unweighted iff no sampled endpoint" false
          (sampled e.Edge.v1 || sampled e.Edge.v2))
    (Runtime.unexecuted_edges (State.runtime state))

let test_estimate_accuracy_uniform () =
  (* Uniform data: every a has exactly 2 b children; estimate of the (a,b)
     edge should be close to |a| * 2. *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf "<r>";
  for _ = 1 to 500 do Buffer.add_string buf "<a><b/><b/></a>" done;
  Buffer.add_string buf "</r>";
  let engine, _ = engine_of_xml (Buffer.contents buf) in
  let g = Graph.create () in
  let a = Graph.add_vertex g ~doc_id:0 (Vertex.Element "a") in
  let b = Graph.add_vertex g ~doc_id:0 (Vertex.Element "b") in
  let e = Graph.add_edge g ~v1:a.Vertex.id ~v2:b.Vertex.id (Edge.Step Rox_algebra.Axis.Child) in
  let state =
    State.create
      (Session.create ~config:{ (Session.default_config ()) with Session.tau = 50 } ())
      engine g
  in
  ignore (State.init_vertex_from_index state a.Vertex.id : bool);
  ignore (State.init_vertex_from_index state b.Vertex.id : bool);
  match Estimate.edge_weight state e with
  | Some w -> check_bool "estimate within 25%" true (abs_float (w -. 1000.0) < 250.0)
  | None -> Alcotest.fail "expected weight"

let test_trace_records () =
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine (q1 145 "<") in
  let trace = Trace.create () in
  let result = Optimizer.run (Session.create ~trace ()) compiled in
  let events = Trace.events trace in
  check_bool "vertex inits" true
    (List.exists (function Trace.Vertex_initialized _ -> true | _ -> false) events);
  check_bool "edge weights" true
    (List.exists (function Trace.Edge_weighted _ -> true | _ -> false) events);
  check_bool "executions traced" true
    (List.length (Trace.execution_order trace) = List.length result.Optimizer.edge_order);
  check_bool "order matches" true
    (Trace.execution_order trace = result.Optimizer.edge_order)

let test_work_buckets_populated () =
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine (q1 145 "<") in
  let result = Optimizer.run_default compiled in
  let c = result.Optimizer.counter in
  check_bool "sampling work" true (Rox_algebra.Cost.read c Rox_algebra.Cost.Sampling > 0);
  check_bool "execution work" true (Rox_algebra.Cost.read c Rox_algebra.Cost.Execution > 0)

let suite =
  [
    Alcotest.test_case "ROX Q1 = naive" `Quick test_rox_q1_correct;
    Alcotest.test_case "ROX Qm1 = naive" `Quick test_rox_qm1_correct;
    Alcotest.test_case "ROX Fig1 query = naive" `Quick test_rox_fig1_correct;
    Alcotest.test_case "ROX answer nonempty" `Quick test_rox_nonempty;
    Alcotest.test_case "ROX DBLP = naive" `Quick test_rox_dblp_correct;
    Alcotest.test_case "deterministic" `Quick test_rox_deterministic;
    Alcotest.test_case "seed-independent answers" `Quick test_rox_seed_sensitivity;
    Alcotest.test_case "ablation: greedy" `Quick test_ablation_greedy;
    Alcotest.test_case "ablation: no resample" `Quick test_ablation_noresample;
    Alcotest.test_case "ablation: fixed cutoff" `Quick test_ablation_fixed_cutoff;
    Alcotest.test_case "tau variants correct" `Quick test_tau_variants;
    Alcotest.test_case "correlation adaptivity" `Quick test_correlation_defers_bidders;
    Alcotest.test_case "chain finds selective path" `Quick test_chain_finds_selective_path;
    Alcotest.test_case "state init and weights" `Quick test_state_init_and_weights;
    Alcotest.test_case "estimate accuracy uniform" `Quick test_estimate_accuracy_uniform;
    Alcotest.test_case "trace records" `Quick test_trace_records;
    Alcotest.test_case "work buckets populated" `Quick test_work_buckets_populated;
  ]

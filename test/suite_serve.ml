(* The serving front-end: wire protocol totality (framing, truncation,
   junk), bounded admission with backpressure, fingerprint coalescing
   determinism, budget aborts as structured replies, the RX6xx audit
   checks, and a 2-domain end-to-end session over a socketpair. *)

module P = Rox_serve.Protocol
module S = Rox_serve.Server
module A = Rox_analysis

let codes diags =
  List.sort_uniq compare (List.map (fun d -> d.A.Diagnostic.code) diags)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---------- fixture ---------------------------------------------------- *)

let library_xml =
  {|<library>
  <book year="2009"><title>Run-time Query Optimization</title>
    <author>Abdel Kader</author><author>Boncz</author></book>
  <book year="2004"><title>Staircase Join</title>
    <author>Grust</author><author>van Keulen</author><author>Teubner</author></book>
  <book year="2009"><title>Join Graph Isolation</title>
    <author>Grust</author><author>Mayr</author><author>Rittinger</author></book>
</library>|}

let library_query =
  {|for $b in doc("library.xml")//book[./@year = 2009],
    $a in doc("library.xml")//author
where $b//author/text() = $a/text()
return $a|}

let other_query =
  {|for $b in doc("library.xml")//book[./@year = 2004],
    $a in doc("library.xml")//author
where $b//author/text() = $a/text()
return $a|}

let library_engine () =
  let engine = Rox_storage.Engine.create () in
  ignore
    (Rox_storage.Engine.add_tree engine ~uri:"library.xml"
       (Rox_xmldom.Xml_parser.parse_string library_xml)
      : Rox_storage.Engine.docref);
  engine

(* The reference answer: a plain session run, no server involved. *)
let reference_ids engine query =
  let compiled = Rox_xquery.Compile.compile_string engine query in
  let session = Rox_core.Session.create () in
  fst (Rox_core.Optimizer.answer session compiled)

(* ---------- protocol: render/parse round-trips ------------------------- *)

let test_request_roundtrip () =
  let check r =
    match P.parse_request (P.render_request r) with
    | Ok r' -> Alcotest.(check bool) "request round-trip" true (r = r')
    | Error m -> Alcotest.failf "parse failed: %s" m
  in
  check P.Ping;
  check P.Stats;
  check P.Quit;
  check (P.Query (P.query "for $a in doc(\"x.xml\")//a return $a"));
  check
    (P.Query
       (P.query ~seed:7 ~tau:50 ~deadline_ms:200 ~max_sampled_rows:1000
          ~max_rows:99 ~limit:10 ~client_id:"tenant-1.a"
          "for $a in doc(\"x.xml\")//a\nreturn $a"))

let test_response_roundtrip () =
  let check r =
    match P.parse_response (P.render_response r) with
    | Ok r' -> Alcotest.(check bool) "response round-trip" true (r = r')
    | Error m -> Alcotest.failf "parse failed: %s" m
  in
  check P.Pong;
  check P.Bye;
  check (P.Stats_reply [ ("requests", "3"); ("tenant.local", "2") ]);
  check (P.Err (P.Busy, "admission queue full"));
  check (P.Err (P.Sampled_rows, "budget exceeded: spent 212, budget 1"));
  check (P.Answer { ids = [| 3; 1; 4; 1; 5 |]; total = 5; sampling = 12; execution = 34 });
  check (P.Answer { ids = [||]; total = 0; sampling = 0; execution = 0 })

let test_request_rejects () =
  let bad payload =
    match P.parse_request payload with
    | Ok _ -> Alcotest.failf "accepted %S" payload
    | Error _ -> ()
  in
  bad "";
  bad "FROB";
  bad "QUERY seed=1";                 (* no body *)
  bad "QUERY seed=1\n";               (* empty body *)
  bad "QUERY seed=-3\nq";             (* negative *)
  bad "QUERY seed=abc\nq";            (* junk number *)
  bad "QUERY frobs=1\nq";             (* unknown key *)
  bad "QUERY seed\nq";                (* not k=v *)
  bad "QUERY client_id=a|b\nq";       (* outside the id alphabet *)
  match P.parse_request "QUERY seed=1 tau=5 client_id=ok_id.1-x\nbody" with
  | Ok (P.Query q) ->
    Alcotest.(check string) "client_id" "ok_id.1-x" q.P.client_id;
    Alcotest.(check string) "body" "body" q.P.text
  | _ -> Alcotest.fail "valid QUERY rejected"

(* ---------- protocol: the scrape verbs (METRICS / RECENT / TRACE) ------ *)

let test_scrape_roundtrip () =
  let req r =
    match P.parse_request (P.render_request r) with
    | Ok r' -> Alcotest.(check bool) "request round-trip" true (r = r')
    | Error m -> Alcotest.failf "parse failed: %s" m
  in
  req P.Metrics;
  req (P.Recent 0);
  req (P.Recent 10);
  req (P.Trace_get 42);
  let resp r =
    match P.parse_response (P.render_response r) with
    | Ok r' -> Alcotest.(check bool) "response round-trip" true (r = r')
    | Error m -> Alcotest.failf "parse failed: %s" m
  in
  resp (P.Metrics_reply "# HELP x y\n# TYPE x counter\nx 1\n");
  resp (P.Metrics_reply "");
  resp (P.Recent_reply [ {|{"trace_id":1}|}; {|{"trace_id":2}|} ]);
  resp (P.Recent_reply []);
  resp (P.Trace_reply (7, {|{"traceEvents":[]}|}));
  resp (P.Err (P.Unknown_id, "trace 9 not retained"));
  Alcotest.(check bool) "Unknown_id wire label" true
    (contains
       (P.render_response (P.Err (P.Unknown_id, "x")))
       "not_found");
  let bad payload =
    match P.parse_request payload with
    | Ok _ -> Alcotest.failf "accepted %S" payload
    | Error _ -> ()
  in
  bad "RECENT";          (* missing count *)
  bad "RECENT n=";       (* empty count *)
  bad "RECENT n=-1";     (* negative *)
  bad "RECENT n=abc";    (* junk *)
  bad "TRACE";           (* missing id *)
  bad "TRACE id=junk";
  bad "METRICS now";     (* METRICS takes no argument *)
  (* A RECENT reply must carry exactly as many lines as it declares. *)
  match P.parse_response "RECENT n=2\nonly-one-line" with
  | Ok _ -> Alcotest.fail "line-count mismatch must be rejected"
  | Error _ -> ()

(* ---------- protocol: incremental decoder ------------------------------ *)

let test_decoder_byte_by_byte () =
  let payloads = [ "PING"; "QUERY seed=1\nfor $a in x return $a"; "" ] in
  let stream = String.concat "" (List.map P.frame payloads) in
  let d = P.decoder () in
  let got = ref [] in
  String.iter
    (fun c ->
      P.feed d (String.make 1 c);
      let rec drain () =
        match P.next d with
        | `Frame f ->
          got := f :: !got;
          drain ()
        | `Awaiting -> ()
        | `Corrupt m -> Alcotest.failf "corrupt: %s" m
      in
      drain ())
    stream;
  Alcotest.(check (list string)) "frames" payloads (List.rev !got)

let test_decoder_truncated_awaits () =
  let d = P.decoder () in
  P.feed d "11\nonly4";
  (match P.next d with
   | `Awaiting -> ()
   | _ -> Alcotest.fail "truncated frame must await");
  P.feed d "chars";
  (match P.next d with
   | `Awaiting -> ()
   | _ -> Alcotest.fail "still one byte short");
  P.feed d "!";
  match P.next d with
  | `Frame f -> Alcotest.(check string) "completed" "only4chars!" f
  | _ -> Alcotest.fail "frame must complete"

let test_decoder_corrupt () =
  let corrupt input =
    let d = P.decoder () in
    P.feed d input;
    let rec drain () =
      match P.next d with
      | `Frame _ -> drain ()
      | `Awaiting -> Alcotest.failf "%S must corrupt, got awaiting" input
      | `Corrupt _ -> ()
    in
    drain ()
  in
  corrupt "abc\nPING";                 (* junk header *)
  corrupt "\nPING";                    (* empty header *)
  corrupt "12x\nPING";                 (* mixed header *)
  corrupt "999999999\n";               (* longer than 8 digits *)
  corrupt "xxxxxxxxxxxx";              (* no newline in sight *)
  corrupt (P.frame "PING" ^ "junk\n"); (* corrupt after a good frame *)
  let d = P.decoder ~max_frame:16 () in
  P.feed d "17\n";
  (match P.next d with
   | `Corrupt _ -> ()
   | _ -> Alcotest.fail "oversized declared length must corrupt");
  (* sticky: once corrupt, always corrupt *)
  P.feed d (P.frame "PING");
  match P.next d with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "corruption must be sticky"

(* ---------- admission: bounded queue, backpressure --------------------- *)

let test_admission_rejects_when_full () =
  let engine = library_engine () in
  let server =
    S.create (S.config ~workers:0 ~queue_capacity:1 ~telemetry:false engine)
  in
  let t1 =
    match S.submit_async server (P.query library_query) with
    | `Ticket t -> t
    | `Rejected -> Alcotest.fail "first submit must be admitted"
  in
  (* A *distinct* fingerprint must bounce off the full queue (an identical
     one would coalesce, which consumes no capacity). *)
  (match S.submit_async server (P.query other_query) with
   | `Rejected -> ()
   | `Ticket _ -> Alcotest.fail "full queue must reject");
  S.shutdown server;
  (match S.await server t1 with
   | P.Err (P.Busy, _) -> ()
   | _ -> Alcotest.fail "shutdown must fail queued tickets as busy");
  let a = S.audit server in
  Alcotest.(check int) "submitted" 2 a.A.Serve_check.sv_submitted;
  Alcotest.(check int) "rejected" 2 a.A.Serve_check.sv_rejected;
  Alcotest.(check int) "executed" 0 a.A.Serve_check.sv_executed;
  Alcotest.(check (list string)) "audit balances" [] (codes (S.self_check server))

(* ---------- coalescing: one execution, bit-identical answers ----------- *)

let test_coalescing_deterministic () =
  let engine = library_engine () in
  let server =
    S.create (S.config ~workers:0 ~queue_capacity:4 ~telemetry:false engine)
  in
  let q = P.query library_query in
  let t1 =
    match S.submit_async server q with
    | `Ticket t -> t
    | `Rejected -> Alcotest.fail "admitted"
  in
  let t2 =
    match S.submit_async server (P.query ~client_id:"twin" library_query) with
    | `Ticket t -> t
    | `Rejected -> Alcotest.fail "identical request must coalesce, not reject"
  in
  Alcotest.(check int) "one queued execution" 1 (S.queue_depth server);
  (* One in-flight entry, two clients attached to it (submitter + twin). *)
  let stats = S.stats_kvs server in
  Alcotest.(check string) "one inflight entry" "1" (List.assoc "inflight" stats);
  Alcotest.(check string) "two attached waiters" "2"
    (List.assoc "inflight_waiters" stats);
  Alcotest.(check bool) "one drain serves both" true (S.drain_once server);
  Alcotest.(check bool) "queue empty" false (S.drain_once server);
  let r1 = S.await server t1 and r2 = S.await server t2 in
  let ids = function
    | P.Answer a -> a.ids
    | r -> Alcotest.failf "expected answer, got %s" (P.render_response r)
  in
  Alcotest.(check bool) "coalesced twins bit-identical" true (ids r1 = ids r2);
  Alcotest.(check bool) "matches independent execution" true
    (ids r1 = reference_ids engine library_query);
  S.shutdown server;
  let a = S.audit server in
  Alcotest.(check int) "coalesced" 1 a.A.Serve_check.sv_coalesced;
  Alcotest.(check int) "executed" 1 a.A.Serve_check.sv_executed;
  Alcotest.(check (list string)) "audit clean" [] (codes (S.self_check server))

let test_distinct_seeds_do_not_coalesce () =
  let engine = library_engine () in
  let server =
    S.create (S.config ~workers:0 ~queue_capacity:4 ~telemetry:false engine)
  in
  ignore (S.submit_async server (P.query ~seed:1 library_query));
  ignore (S.submit_async server (P.query ~seed:2 library_query));
  Alcotest.(check int) "two executions queued" 2 (S.queue_depth server);
  while S.drain_once server do () done;
  S.shutdown server;
  let a = S.audit server in
  Alcotest.(check int) "no coalescing" 0 a.A.Serve_check.sv_coalesced;
  Alcotest.(check int) "both executed" 2 a.A.Serve_check.sv_executed

(* ---------- budget aborts are structured replies ----------------------- *)

let test_budget_abort_replies () =
  let engine = library_engine () in
  let server =
    S.create (S.config ~workers:1 ~queue_capacity:8 ~telemetry:false engine)
  in
  (match S.submit server (P.query ~max_sampled_rows:1 library_query) with
   | P.Err (P.Sampled_rows, _) -> ()
   | r -> Alcotest.failf "want ERR sampled_rows, got %s" (P.render_response r));
  (match S.submit server (P.query ~max_rows:1 library_query) with
   | P.Err (P.Max_rows, _) -> ()
   | r -> Alcotest.failf "want ERR max_rows, got %s" (P.render_response r));
  (match S.submit server (P.query ~deadline_ms:0 library_query) with
   | P.Err (P.Deadline, _) -> ()
   | r -> Alcotest.failf "want ERR deadline, got %s" (P.render_response r));
  (match S.submit server (P.query "for $a in doc(\"nope.xml\"//a") with
   | P.Err (P.Bad_query, _) -> ()
   | r -> Alcotest.failf "want ERR bad_query, got %s" (P.render_response r));
  S.shutdown server;
  Alcotest.(check (list string)) "audit clean" [] (codes (S.self_check server))

(* ---------- the RX6xx checks over synthetic audit snapshots ------------ *)

let test_serve_check_codes () =
  let ok =
    {
      A.Serve_check.sv_requests = 5;
      sv_responses = 5;
      sv_submitted = 3;
      sv_executed = 2;
      sv_coalesced = 1;
      sv_rejected = 0;
      sv_divergence = 0;
    }
  in
  Alcotest.(check (list string)) "balanced is clean" []
    (codes (A.Serve_check.check ok));
  Alcotest.(check (list string)) "response without request" [ "RX601" ]
    (codes (A.Serve_check.check { ok with A.Serve_check.sv_responses = 6 }));
  Alcotest.(check (list string)) "divergence" [ "RX602" ]
    (codes (A.Serve_check.check { ok with A.Serve_check.sv_divergence = 1 }));
  Alcotest.(check (list string)) "dropped request" [ "RX603" ]
    (codes (A.Serve_check.check { ok with A.Serve_check.sv_submitted = 4 }));
  Alcotest.(check (list string)) "all three" [ "RX601"; "RX602"; "RX603" ]
    (codes
       (A.Serve_check.check
          {
            ok with
            A.Serve_check.sv_responses = 9;
            sv_divergence = 2;
            sv_rejected = 7;
          }))

(* ---------- tenants ----------------------------------------------------- *)

let test_tenant_accounting () =
  let engine = library_engine () in
  let server =
    S.create (S.config ~workers:1 ~queue_capacity:8 ~telemetry:false engine)
  in
  ignore (S.submit server (P.query ~client_id:"alpha" library_query));
  ignore (S.submit server (P.query ~client_id:"alpha" other_query));
  ignore (S.submit server (P.query ~client_id:"beta" library_query));
  ignore (S.submit server (P.query library_query));
  S.shutdown server;
  Alcotest.(check (list (pair string int)))
    "per-tenant served counts"
    [ ("alpha", 2); ("beta", 1); ("local", 1) ]
    (S.tenants server)

(* ---------- end-to-end: protocol session over a socketpair ------------- *)

let test_socketpair_session_two_domains () =
  let engine = library_engine () in
  let expected = Array.length (reference_ids engine library_query) in
  let server = S.create (S.config ~workers:2 ~queue_capacity:8 engine) in
  let srv_fd, cli_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* The client drives the whole scripted session from its own domain
     while this domain runs the connection handler. *)
  let client =
    Domain.spawn (fun () ->
        let d = P.decoder () in
        let send r = P.write_frame cli_fd (P.render_request r) in
        let recv () =
          match P.read_frame cli_fd d with
          | `Frame payload -> (
            match P.parse_response payload with
            | Ok r -> r
            | Error m -> failwith m)
          | `Eof -> failwith "eof"
          | `Corrupt m -> failwith m
        in
        send P.Ping;
        let pong = recv () in
        send (P.Query (P.query ~client_id:"e2e" library_query));
        let full = recv () in
        send (P.Query (P.query ~client_id:"e2e" ~limit:1 library_query));
        let limited = recv () in
        send P.Stats;
        let stats = recv () in
        send P.Quit;
        let bye = recv () in
        Unix.close cli_fd;
        (pong, full, limited, stats, bye))
  in
  S.handle_connection server srv_fd;
  let pong, full, limited, stats, bye = Domain.join client in
  S.shutdown server;
  Alcotest.(check bool) "pong" true (pong = P.Pong);
  (match full with
   | P.Answer a ->
     Alcotest.(check int) "full answer" expected (Array.length a.ids);
     Alcotest.(check int) "total" expected a.total
   | r -> Alcotest.failf "want answer, got %s" (P.render_response r));
  (match limited with
   | P.Answer a ->
     Alcotest.(check int) "limit truncates ids" 1 (Array.length a.ids);
     Alcotest.(check int) "limit keeps total" expected a.total
   | r -> Alcotest.failf "want answer, got %s" (P.render_response r));
  (match stats with
   | P.Stats_reply kvs ->
     Alcotest.(check string) "requests" "4" (List.assoc "requests" kvs);
     Alcotest.(check string) "executed" "2" (List.assoc "executed" kvs);
     Alcotest.(check string) "tenant" "2" (List.assoc "tenant.e2e" kvs)
   | r -> Alcotest.failf "want stats, got %s" (P.render_response r));
  Alcotest.(check bool) "bye" true (bye = P.Bye);
  Alcotest.(check (list string)) "audit clean" [] (codes (S.self_check server))

(* ---------- disconnecting clients and the connection cap --------------- *)

let test_sigpipe_ignored_on_closed_peer () =
  let engine = library_engine () in
  (* create installs the process-wide SIGPIPE ignore … *)
  let server = S.create (S.config ~workers:0 ~telemetry:false engine) in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close b;
  (* … so a write to a closed peer surfaces as EPIPE instead of killing
     the whole test process. *)
  (match P.write_frame a "PING" with
   | () -> Alcotest.fail "write to a closed peer must fail"
   | exception Unix.Unix_error (Unix.EPIPE, _, _) -> ()
   | exception End_of_file -> ());
  Unix.close a;
  S.shutdown server

let test_client_disconnects_mid_session () =
  let engine = library_engine () in
  let server = S.create (S.config ~workers:2 ~telemetry:false engine) in
  let srv_fd, cli_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* The client fires a query and hangs up without reading the reply; the
     handler must treat the dead peer as a normal close, not raise. *)
  P.write_frame cli_fd (P.render_request (P.Query (P.query library_query)));
  Unix.close cli_fd;
  S.handle_connection server srv_fd;
  S.shutdown server;
  Alcotest.(check (list string)) "audit clean" [] (codes (S.self_check server))

let test_connection_cap () =
  let engine = library_engine () in
  let server =
    S.create (S.config ~workers:1 ~max_connections:1 ~telemetry:false engine)
  in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rox_serve_cap_%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 8;
  let acceptor = Thread.create (fun () -> S.serve server listen_fd) () in
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  in
  let recv fd d =
    match P.read_frame fd d with
    | `Frame payload -> (
      match P.parse_response payload with
      | Ok r -> `Resp r
      | Error m -> Alcotest.failf "bad response: %s" m)
    | `Eof -> `Eof
    | `Corrupt m -> Alcotest.failf "corrupt stream: %s" m
  in
  let c1 = connect () in
  let d1 = P.decoder () in
  P.write_frame c1 (P.render_request P.Ping);
  Alcotest.(check bool) "first connection serves" true
    (recv c1 d1 = `Resp P.Pong);
  (* The second connection is over the cap: one ERR busy frame, then EOF —
     and the first connection keeps working. *)
  let c2 = connect () in
  let d2 = P.decoder () in
  (match recv c2 d2 with
   | `Resp (P.Err (P.Busy, _)) -> ()
   | _ -> Alcotest.fail "over-cap connection must answer ERR busy");
  Alcotest.(check bool) "over-cap connection closes" true (recv c2 d2 = `Eof);
  Unix.close c2;
  P.write_frame c1 (P.render_request P.Stats);
  (match recv c1 d1 with
   | `Resp (P.Stats_reply kvs) ->
     Alcotest.(check string) "connections" "1" (List.assoc "connections" kvs);
     Alcotest.(check string) "conn_rejected" "1"
       (List.assoc "conn_rejected" kvs)
   | _ -> Alcotest.fail "stats over the surviving connection");
  P.write_frame c1 (P.render_request P.Quit);
  Alcotest.(check bool) "bye" true (recv c1 d1 = `Resp P.Bye);
  Unix.close c1;
  (* Shutting the listener down makes accept fail on the fd itself, which
     is the one condition that ends the loop. *)
  Unix.shutdown listen_fd Unix.SHUTDOWN_ALL;
  Thread.join acceptor;
  Unix.close listen_fd;
  S.shutdown server;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Alcotest.(check (list string)) "audit clean" [] (codes (S.self_check server))

(* ---------- server metrics --------------------------------------------- *)

let test_server_metrics () =
  let engine = library_engine () in
  let server = S.create (S.config ~workers:1 ~queue_capacity:8 engine) in
  ignore (S.submit server (P.query library_query));
  ignore (S.submit server (P.query library_query));
  S.shutdown server;
  let m = S.metrics server in
  let module Tm = Rox_telemetry.Metrics in
  Alcotest.(check int) "serve_ns histogram count" 2 m.Tm.serve_ns.Tm.h_count;
  Alcotest.(check int) "queue_wait histogram count" 2 m.Tm.queue_wait_ns.Tm.h_count;
  Alcotest.(check bool) "absorbed session registries served 2 queries" true
    (m.Tm.queries_served.Tm.c_value = 2)

(* ---------- flight recorder over the serve API ------------------------- *)

let test_flight_recorder_scrape () =
  let engine = library_engine () in
  let server = S.create (S.config ~workers:1 ~queue_capacity:8 engine) in
  ignore (S.submit server (P.query ~client_id:"alpha" library_query));
  ignore (S.submit server (P.query ~client_id:"beta" other_query));
  (* The third request aborts on its sampling budget: an errored record,
     which the tail sampler always retains. *)
  (match
     S.submit server
       (P.query ~client_id:"gamma" ~max_sampled_rows:1 library_query)
   with
   | P.Err (P.Sampled_rows, _) -> ()
   | r -> Alcotest.failf "want ERR sampled_rows, got %s" (P.render_response r));
  (* STATS: the new uptime and recorder keys. *)
  let kvs = S.stats_kvs server in
  Alcotest.(check string) "records" "3" (List.assoc "records" kvs);
  Alcotest.(check string) "records_dropped" "0"
    (List.assoc "records_dropped" kvs);
  Alcotest.(check bool) "uptime_ms present" true
    (List.mem_assoc "uptime_ms" kvs);
  Alcotest.(check bool) "started_at present" true
    (List.mem_assoc "started_at" kvs);
  Alcotest.(check bool) "errored request is retained" true
    (int_of_string (List.assoc "traces_retained" kvs) >= 1);
  (* METRICS: the exposition page carries the recorder and tenant series
     after the process aggregate. *)
  let page = S.metrics_text server in
  Alcotest.(check bool) "recorder records series" true
    (contains page "rox_recorder_records_total 3");
  Alcotest.(check bool) "tenant series" true
    (contains page "rox_tenant_requests_total{tenant=\"alpha\"} 1");
  Alcotest.(check bool) "tenant errors series" true
    (contains page "rox_tenant_errors_total{tenant=\"gamma\"} 1");
  (* RECENT: JSONL, newest first, the errored record on top. *)
  let lines = S.recent_lines server 10 in
  Alcotest.(check int) "one line per request" 3 (List.length lines);
  let parsed =
    List.map
      (fun line ->
        match Rox_util.Minijson.parse line with
        | Ok j -> j
        | Error m -> Alcotest.failf "RECENT line must parse: %s" m)
      lines
  in
  let module J = Rox_util.Minijson in
  (match parsed with
   | newest :: _ ->
     Alcotest.(check bool) "newest first" true
       (Option.bind (J.member "trace_id" newest) J.to_num_opt = Some 3.0);
     Alcotest.(check bool) "errored status surfaces" true
       (Option.bind (J.member "status" newest) J.to_string_opt
       = Some "sampled_rows");
     Alcotest.(check bool) "retention reason surfaces" true
       (Option.bind (J.member "retained" newest) J.to_string_opt
       = Some "errored")
   | [] -> Alcotest.fail "unreachable");
  Alcotest.(check int) "RECENT honours n" 1 (List.length (S.recent_lines server 1));
  (* TRACE: a retained id exports a valid Chrome trace; an unknown id is
     ERR not_found. *)
  let rc =
    match S.recorder server with
    | Some rc -> rc
    | None -> Alcotest.fail "recorder is on by default"
  in
  let retained_id =
    match Rox_telemetry.Recorder.traces rc with
    | (id, _, _, _) :: _ -> id
    | [] -> Alcotest.fail "at least one trace must be retained"
  in
  (match S.trace_response server retained_id with
   | P.Trace_reply (id, body) ->
     Alcotest.(check int) "id echoes" retained_id id;
     (match J.parse body with
      | Ok j -> (
        match Rox_telemetry.Export.validate_chrome j with
        | Ok n -> Alcotest.(check bool) "has complete events" true (n >= 1)
        | Error m -> Alcotest.failf "invalid chrome trace: %s" m)
      | Error m -> Alcotest.failf "trace body must parse: %s" m)
   | r -> Alcotest.failf "want TRACE reply, got %s" (P.render_response r));
  (match S.trace_response server 999_999 with
   | P.Err (P.Unknown_id, _) -> ()
   | r ->
     Alcotest.failf "unknown id must ERR not_found, got %s"
       (P.render_response r));
  S.shutdown server;
  Alcotest.(check (list string)) "audit clean" [] (codes (S.self_check server));
  Alcotest.(check (list string)) "recorder accounting balances" []
    (codes (A.Recorder_check.check ~submitted:3 rc))

(* The scrape verbs over the wire, plus TRACE's error path end-to-end. *)
let test_socketpair_scrape_session () =
  let engine = library_engine () in
  let server = S.create (S.config ~workers:2 ~queue_capacity:8 engine) in
  let srv_fd, cli_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let client =
    Domain.spawn (fun () ->
        let d = P.decoder () in
        let send r = P.write_frame cli_fd (P.render_request r) in
        let recv () =
          match P.read_frame cli_fd d with
          | `Frame payload -> (
            match P.parse_response payload with
            | Ok r -> r
            | Error m -> failwith m)
          | `Eof -> failwith "eof"
          | `Corrupt m -> failwith m
        in
        send (P.Query (P.query ~client_id:"scrape" library_query));
        let answer = recv () in
        send P.Metrics;
        let metrics = recv () in
        send (P.Recent 5);
        let recent = recv () in
        send (P.Trace_get 424_242);
        let missing = recv () in
        send P.Quit;
        let bye = recv () in
        Unix.close cli_fd;
        (answer, metrics, recent, missing, bye))
  in
  S.handle_connection server srv_fd;
  let answer, metrics, recent, missing, bye = Domain.join client in
  S.shutdown server;
  (match answer with
   | P.Answer _ -> ()
   | r -> Alcotest.failf "want answer, got %s" (P.render_response r));
  (match metrics with
   | P.Metrics_reply page ->
     Alcotest.(check bool) "recorder series over the wire" true
       (contains page "rox_recorder_records_total 1")
   | r -> Alcotest.failf "want METRICS reply, got %s" (P.render_response r));
  (match recent with
   | P.Recent_reply [ line ] -> (
     match Rox_util.Minijson.parse line with
     | Ok j ->
       let module J = Rox_util.Minijson in
       Alcotest.(check bool) "tenant over the wire" true
         (Option.bind (J.member "tenant" j) J.to_string_opt = Some "scrape")
     | Error m -> Alcotest.failf "RECENT line must parse: %s" m)
   | r -> Alcotest.failf "want one RECENT line, got %s" (P.render_response r));
  (match missing with
   | P.Err (P.Unknown_id, _) -> ()
   | r -> Alcotest.failf "want ERR not_found, got %s" (P.render_response r));
  Alcotest.(check bool) "bye" true (bye = P.Bye);
  Alcotest.(check (list string)) "audit clean" [] (codes (S.self_check server))

let suite =
  [
    Alcotest.test_case "protocol: request round-trip" `Quick test_request_roundtrip;
    Alcotest.test_case "protocol: response round-trip" `Quick test_response_roundtrip;
    Alcotest.test_case "protocol: malformed requests rejected" `Quick test_request_rejects;
    Alcotest.test_case "decoder: byte-by-byte" `Quick test_decoder_byte_by_byte;
    Alcotest.test_case "decoder: truncated frame awaits" `Quick test_decoder_truncated_awaits;
    Alcotest.test_case "decoder: junk and oversized corrupt" `Quick test_decoder_corrupt;
    Alcotest.test_case "admission: full queue rejects" `Quick test_admission_rejects_when_full;
    Alcotest.test_case "coalescing: bit-identical twins" `Quick test_coalescing_deterministic;
    Alcotest.test_case "coalescing: distinct seeds independent" `Quick test_distinct_seeds_do_not_coalesce;
    Alcotest.test_case "budget aborts answer as ERR" `Quick test_budget_abort_replies;
    Alcotest.test_case "serve_check: RX601/602/603" `Quick test_serve_check_codes;
    Alcotest.test_case "tenant accounting" `Quick test_tenant_accounting;
    Alcotest.test_case "e2e: socketpair session, 2 domains" `Quick test_socketpair_session_two_domains;
    Alcotest.test_case "sigpipe ignored: closed peer is EPIPE" `Quick test_sigpipe_ignored_on_closed_peer;
    Alcotest.test_case "client disconnect is a normal close" `Quick test_client_disconnects_mid_session;
    Alcotest.test_case "connection cap bounces with ERR busy" `Quick test_connection_cap;
    Alcotest.test_case "server metrics snapshot" `Quick test_server_metrics;
    Alcotest.test_case "protocol: scrape verbs round-trip" `Quick test_scrape_roundtrip;
    Alcotest.test_case "flight recorder: STATS/METRICS/RECENT/TRACE" `Quick test_flight_recorder_scrape;
    Alcotest.test_case "e2e: scrape verbs over a socketpair" `Quick test_socketpair_scrape_session;
  ]

let () =
  Alcotest.run "rox"
    [
      ("util", Suite_util.suite);
      ("xmldom", Suite_xml.suite);
      ("shred", Suite_shred.suite);
      ("storage", Suite_storage.suite);
      ("algebra", Suite_algebra.suite);
      ("joingraph", Suite_joingraph.suite);
      ("cache", Suite_cache.suite);
      ("xquery", Suite_xquery.suite);
      ("core", Suite_core.suite);
      ("session", Suite_session.suite);
      ("classical", Suite_classical.suite);
      ("workload", Suite_workload.suite);
      ("extensions", Suite_extensions.suite);
      ("analysis", Suite_analysis.suite);
      ("concurrency", Suite_concurrency.suite);
      ("telemetry", Suite_telemetry.suite);
      ("serve", Suite_serve.suite);
      ("fuzz", Suite_fuzz.suite);
      ("props", Suite_props.suite);
    ]

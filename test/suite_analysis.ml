(* The static analysis passes and the operator-contract sanitizer: each
   check must catch its deliberately corrupted input, and clean graphs,
   traces and runs must come back without error diagnostics. *)

open Rox_algebra
open Rox_joingraph
open Rox_analysis
open Helpers

let errors diags = List.filter Diagnostic.is_error diags
let codes diags = List.map (fun d -> d.Diagnostic.code) diags

let has_error code diags =
  List.exists (fun d -> Diagnostic.is_error d && d.Diagnostic.code = code) diags

(* root //→ a /→ b, plus a second a→text branch for equi tests. *)
let small_graph () =
  let g = Graph.create () in
  let root = Graph.add_vertex g ~doc_id:0 Vertex.Root in
  let a = Graph.add_vertex g ~doc_id:0 (Vertex.Element "a") in
  let b = Graph.add_vertex g ~doc_id:0 (Vertex.Element "b") in
  let trivial =
    Graph.add_edge g ~v1:root.Vertex.id ~v2:a.Vertex.id (Edge.Step Axis.Descendant)
  in
  let step = Graph.add_edge g ~v1:a.Vertex.id ~v2:b.Vertex.id (Edge.Step Axis.Child) in
  (g, trivial, step)

(* --- graph checks ------------------------------------------------------ *)

let test_disconnected_graph () =
  let g = Graph.create () in
  let root = Graph.add_vertex g ~doc_id:0 Vertex.Root in
  let a = Graph.add_vertex g ~doc_id:0 (Vertex.Element "a") in
  ignore (Graph.add_vertex g ~doc_id:0 (Vertex.Element "orphan") : Vertex.t);
  ignore
    (Graph.add_edge g ~v1:root.Vertex.id ~v2:a.Vertex.id (Edge.Step Axis.Descendant)
      : Edge.t);
  let diags = Graph_check.check g in
  check_bool "RX001 fires" true (has_error "RX001" diags)

let test_clean_graph () =
  let g, _, _ = small_graph () in
  check_int "clean graph: no diagnostics" 0 (List.length (Graph_check.check g))

let test_equijoin_on_root () =
  let g = Graph.create () in
  let root = Graph.add_vertex g ~doc_id:0 Vertex.Root in
  let t = Graph.add_vertex g ~doc_id:0 (Vertex.Text None) in
  ignore
    (Graph.add_edge g ~v1:root.Vertex.id ~v2:t.Vertex.id (Edge.Step Axis.Descendant)
      : Edge.t);
  ignore (Graph.add_edge g ~v1:root.Vertex.id ~v2:t.Vertex.id Edge.Equijoin : Edge.t);
  check_bool "RX005 fires" true (has_error "RX005" (Graph_check.check g))

let test_cross_document_step () =
  let g = Graph.create () in
  let a = Graph.add_vertex g ~doc_id:0 (Vertex.Element "a") in
  let b = Graph.add_vertex g ~doc_id:1 (Vertex.Element "b") in
  ignore
    (Graph.add_edge g ~v1:a.Vertex.id ~v2:b.Vertex.id (Edge.Step Axis.Child) : Edge.t);
  check_bool "RX006 fires" true (has_error "RX006" (Graph_check.check g))

let test_bad_derived_edge () =
  let g = Graph.create () in
  let t1 = Graph.add_vertex g ~doc_id:0 (Vertex.Text None) in
  let t2 = Graph.add_vertex g ~doc_id:0 (Vertex.Text None) in
  ignore
    (Graph.add_edge g ~v1:t1.Vertex.id ~v2:t2.Vertex.id (Edge.Step Axis.Following)
      : Edge.t);
  (* Derived equi-join with no base equi-join implying it. *)
  ignore
    (Graph.add_edge g ~derived:true ~v1:t1.Vertex.id ~v2:t2.Vertex.id Edge.Equijoin
      : Edge.t);
  check_bool "RX008 fires" true (has_error "RX008" (Graph_check.check g))

(* --- plan checks ------------------------------------------------------- *)

let test_plan_violations () =
  let g, trivial, step = small_graph () in
  (* Unknown id, duplicate, trivial edge listed, real edge missing. *)
  let diags = Plan_check.check g [ 99; trivial.Edge.id; step.Edge.id; step.Edge.id ] in
  check_bool "RX201 fires" true (has_error "RX201" diags);
  check_bool "RX202 fires" true (has_error "RX202" diags);
  check_bool "RX204 warns" true (List.mem "RX204" (codes diags));
  let missing = Plan_check.check g [] in
  check_bool "RX203 fires" true (has_error "RX203" missing);
  check_int "good plan: no errors" 0 (List.length (errors (Plan_check.check g [ step.Edge.id ])))

(* --- trace checks ------------------------------------------------------ *)

let weighted_exec g (e : Edge.t) ~order ~pairs ~rel_rows events =
  ignore g;
  events
  @ [
      Trace.Edge_weighted { edge = e.Edge.id; weight = 1.0 };
      Trace.Edge_executed { edge = e.Edge.id; order; pairs; rel_rows };
    ]

let trace_of events =
  let t = Trace.create () in
  List.iter (Trace.emit t) events;
  t

let test_trace_double_execution () =
  let g, _, step = small_graph () in
  let t =
    trace_of
      [
        Trace.Edge_weighted { edge = step.Edge.id; weight = 1.0 };
        Trace.Edge_executed { edge = step.Edge.id; order = 1; pairs = 2; rel_rows = 2 };
        Trace.Edge_executed { edge = step.Edge.id; order = 2; pairs = 2; rel_rows = 2 };
      ]
  in
  check_bool "RX102 fires" true (has_error "RX102" (Trace_check.check g t))

let test_trace_illegal_order () =
  let g, _, step = small_graph () in
  (* Order jumps from nothing to 3: not a contiguous prefix. *)
  let t =
    trace_of
      [
        Trace.Edge_weighted { edge = step.Edge.id; weight = 1.0 };
        Trace.Edge_executed { edge = step.Edge.id; order = 3; pairs = 2; rel_rows = 2 };
      ]
  in
  check_bool "RX103 fires" true (has_error "RX103" (Trace_check.check g t))

let test_trace_unweighted_execution () =
  let g, _, step = small_graph () in
  let t =
    trace_of
      [ Trace.Edge_executed { edge = step.Edge.id; order = 1; pairs = 2; rel_rows = 2 } ]
  in
  check_bool "RX104 fires" true (has_error "RX104" (Trace_check.check g t))

let test_trace_trivial_executed () =
  let g, trivial, step = small_graph () in
  let t =
    trace_of
      (weighted_exec g trivial ~order:2 ~pairs:1 ~rel_rows:1
         (weighted_exec g step ~order:1 ~pairs:1 ~rel_rows:1 []))
  in
  check_bool "RX107 fires" true (has_error "RX107" (Trace_check.check g t))

let test_trace_nonmonotone_cutoff () =
  let g, _, step = small_graph () in
  let t =
    trace_of
      [
        Trace.Chain_started { source = step.Edge.v1; min_edge = step.Edge.id };
        Trace.Chain_round { round = 1; cutoff = 100; paths = [] };
        Trace.Chain_round { round = 2; cutoff = 50; paths = [] };
      ]
  in
  check_bool "RX105 fires" true (has_error "RX105" (Trace_check.check g t))

let test_trace_disconnected_chain () =
  let g = Graph.create () in
  let a = Graph.add_vertex g ~doc_id:0 (Vertex.Element "a") in
  let b = Graph.add_vertex g ~doc_id:0 (Vertex.Element "b") in
  let c = Graph.add_vertex g ~doc_id:0 (Vertex.Element "c") in
  let d = Graph.add_vertex g ~doc_id:0 (Vertex.Element "d") in
  let e1 = Graph.add_edge g ~v1:a.Vertex.id ~v2:b.Vertex.id (Edge.Step Axis.Child) in
  let e2 = Graph.add_edge g ~v1:c.Vertex.id ~v2:d.Vertex.id (Edge.Step Axis.Child) in
  let t =
    trace_of
      [
        Trace.Chain_started { source = a.Vertex.id; min_edge = e1.Edge.id };
        (* e2 does not touch the path frontier: not a connected segment. *)
        Trace.Chain_chosen { edges = [ e1.Edge.id; e2.Edge.id ]; trigger = `Exhausted };
      ]
  in
  check_bool "RX106 fires" true (has_error "RX106" (Trace_check.check g t))

let test_trace_cardinality_accounting () =
  let g, _, step = small_graph () in
  (* A fresh component must have exactly [pairs] rows. *)
  let t =
    trace_of
      [
        Trace.Edge_weighted { edge = step.Edge.id; weight = 1.0 };
        Trace.Edge_executed { edge = step.Edge.id; order = 1; pairs = 2; rel_rows = 5 };
      ]
  in
  check_bool "RX108 fires" true (has_error "RX108" (Trace_check.check g t))

let test_trace_clean_run () =
  let engine, _ = engine_of_xml site_xml in
  let compiled =
    Rox_xquery.Compile.compile_string engine
      {|for $p in doc("doc0.xml")//person[./address/city],
    $n in doc("doc0.xml")//name
where $p/name/text() = $n/text()
return $n|}
  in
  let graph = compiled.Rox_xquery.Compile.graph in
  let trace = Rox_joingraph.Trace.create () in
  let result = Rox_core.Optimizer.run (Rox_core.Session.create ~trace ()) compiled in
  check_int "clean graph" 0 (List.length (errors (Graph_check.check graph)));
  check_int "clean trace" 0 (List.length (errors (Trace_check.check graph trace)));
  check_int "clean plan" 0
    (List.length
       (errors (Plan_check.check graph result.Rox_core.Optimizer.edge_order)))

(* --- operator-contract sanitizer --------------------------------------- *)

let test_sanitizer_unsorted_nodeset () =
  let engine, docref = engine_of_xml site_xml in
  ignore engine;
  let doc = docref.Rox_storage.Engine.doc in
  let candidates = Rox_storage.Kind_index.all (docref.Rox_storage.Engine.kinds) in
  (* An unsorted context violates the Table 1 node-sequence contract. *)
  match
    Contract.wrap (fun () ->
        Staircase.join ~sanitize:true ~doc ~axis:Axis.Descendant
          ~context:(col [| 5; 3 |]) candidates)
  with
  | Ok _ -> Alcotest.fail "sanitizer accepted an unsorted context"
  | Error d ->
    check_string "code" "RX301" d.Diagnostic.code;
    check_bool "is error" true (Diagnostic.is_error d)

let test_sanitizer_zero_cost_off () =
  (* Disabled sanitizer must not interfere: same result, no exception. *)
  let before = Contract.enabled () in
  Contract.set_enabled false;
  let out = Nodeset.of_unsorted [| 4; 2; 4; 1 |] in
  Contract.set_enabled before;
  check_bool "sorted" true (Nodeset.is_sorted_dedup out);
  check_int "len" 3 (Array.length out)

let test_sanitizer_wrap_restores_flag () =
  let before = Contract.enabled () in
  (match Contract.wrap (fun () -> 42) with
   | Ok v -> check_int "wrap passes value through" 42 v
   | Error _ -> Alcotest.fail "no violation expected");
  check_bool "flag restored" before (Contract.enabled ())

let test_report_ordering () =
  let diags =
    [
      Diagnostic.info "RX205" Diagnostic.Graph_loc "info first in input";
      Diagnostic.error "RX001" Diagnostic.Graph_loc "error second in input";
      Diagnostic.warning "RX004" Diagnostic.Graph_loc "warning third in input";
    ]
  in
  let r = Report.make ~subject:"t" diags in
  check_bool "has errors" true (Report.has_errors r);
  check_int "error count" 1 (Report.errors r);
  (match r.Report.diagnostics with
   | first :: _ -> check_string "errors sort first" "RX001" first.Diagnostic.code
   | [] -> Alcotest.fail "empty report");
  check_int "exit code" 1 (Report.exit_code [ r ])

let test_compile_rejects_disconnected () =
  (* Two documents, no join between them: compile must reject. *)
  let engine, _ = engine_of_trees [ random_tree_no_blank 5; random_tree_no_blank 6 ] in
  match
    Rox_xquery.Compile.compile_string engine
      {|for $a in doc("doc0.xml")//a, $b in doc("doc1.xml")//b return $a|}
  with
  | exception Rox_xquery.Compile.Rejected d ->
    check_string "code" "RX001" d.Diagnostic.code
  | _ -> Alcotest.fail "disconnected graph not rejected"

let suite =
  [
    Alcotest.test_case "graph: disconnected -> RX001" `Quick test_disconnected_graph;
    Alcotest.test_case "graph: clean -> no diagnostics" `Quick test_clean_graph;
    Alcotest.test_case "graph: equi-join on root -> RX005" `Quick test_equijoin_on_root;
    Alcotest.test_case "graph: cross-document step -> RX006" `Quick
      test_cross_document_step;
    Alcotest.test_case "graph: unfounded derived edge -> RX008" `Quick
      test_bad_derived_edge;
    Alcotest.test_case "plan: violations detected" `Quick test_plan_violations;
    Alcotest.test_case "trace: double execution -> RX102" `Quick
      test_trace_double_execution;
    Alcotest.test_case "trace: illegal order -> RX103" `Quick test_trace_illegal_order;
    Alcotest.test_case "trace: unweighted execution -> RX104" `Quick
      test_trace_unweighted_execution;
    Alcotest.test_case "trace: trivial edge executed -> RX107" `Quick
      test_trace_trivial_executed;
    Alcotest.test_case "trace: non-monotone cutoff -> RX105" `Quick
      test_trace_nonmonotone_cutoff;
    Alcotest.test_case "trace: disconnected chain -> RX106" `Quick
      test_trace_disconnected_chain;
    Alcotest.test_case "trace: cardinality accounting -> RX108" `Quick
      test_trace_cardinality_accounting;
    Alcotest.test_case "trace: clean ROX run -> no errors" `Quick test_trace_clean_run;
    Alcotest.test_case "sanitizer: unsorted context -> RX301" `Quick
      test_sanitizer_unsorted_nodeset;
    Alcotest.test_case "sanitizer: off by default, no interference" `Quick
      test_sanitizer_zero_cost_off;
    Alcotest.test_case "sanitizer: wrap restores the flag" `Quick
      test_sanitizer_wrap_restores_flag;
    Alcotest.test_case "report: ordering, counts, exit code" `Quick test_report_ordering;
    Alcotest.test_case "compile: disconnected query rejected" `Quick
      test_compile_rejects_disconnected;
  ]

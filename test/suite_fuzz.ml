(* End-to-end fuzzing: random documents x random queries. Three independent
   evaluation routes must agree on every instance:

   - the naive navigation evaluator (no join graph, no indices);
   - ROX (run-time optimization, sampling, chain exploration);
   - the fixed-plan executor on a *random permutation* of the edges.

   This exercises the full stack — parser-equivalent ASTs, compilation,
   indices, staircase and value joins, relation maintenance, semijoin
   updates, tail semantics — under shapes no hand-written test anticipates. *)

open Rox_util
open Rox_storage
open Rox_xquery
open Helpers

(* A bushier random document than the XML round-trip generator: more
   repeated tags so steps and joins hit. *)
let random_doc rng =
  let open Rox_xmldom in
  let rec node depth =
    let r = Xoshiro.int rng 100 in
    if depth >= 4 || r < 25 then Tree.Text (Xoshiro.pick rng words)
    else begin
      let tag = Xoshiro.pick rng tags in
      let attrs =
        if Xoshiro.int rng 3 = 0 then [ ("id", Xoshiro.pick rng words) ] else []
      in
      let n = 1 + Xoshiro.int rng 4 in
      Tree.element ~attrs tag (List.init n (fun _ -> node (depth + 1)))
    end
  in
  let n = 2 + Xoshiro.int rng 5 in
  Tree.document (Tree.element "root" (List.init n (fun _ -> node 1)))

(* Random query over the tag alphabet; always includes at least one for
   variable; sometimes a second document and a text-value join. *)
let random_query rng ndocs =
  let path ~var ~doc =
    let base = if doc then Printf.sprintf "doc(\"doc%d.xml\")" (Xoshiro.int rng ndocs) else var in
    let nsteps = 1 + Xoshiro.int rng 2 in
    let steps =
      List.init nsteps (fun _ ->
          let sep = if Xoshiro.bool rng then "//" else "/" in
          let test = Xoshiro.pick rng tags in
          let pred =
            match Xoshiro.int rng 4 with
            | 0 -> Printf.sprintf "[./%s]" (Xoshiro.pick rng tags)
            | 1 -> Printf.sprintf "[.//%s]" (Xoshiro.pick rng tags)
            | _ -> ""
          in
          sep ^ test ^ pred)
    in
    base ^ String.concat "" steps
  in
  let two_vars = Xoshiro.bool rng in
  if two_vars then
    Printf.sprintf
      "for $a in %s,\n    $b in %s\nwhere $a//text() = $b//text()\nreturn $a"
      (path ~var:"" ~doc:true) (path ~var:"" ~doc:true)
  else Printf.sprintf "for $a in %s\nreturn $a" (path ~var:"" ~doc:true)

let shuffled_plan rng graph =
  let edges =
    Array.of_list
      (List.filter
         (fun e -> not (Rox_joingraph.Runtime.is_trivial_edge graph e))
         (Array.to_list (Rox_joingraph.Graph.edges graph)))
  in
  Xoshiro.shuffle rng edges;
  Array.to_list edges

let run_instance seed =
  let rng = Xoshiro.create seed in
  let ndocs = 1 + Xoshiro.int rng 2 in
  let engine = Engine.create () in
  for i = 0 to ndocs - 1 do
    ignore
      (Engine.add_tree engine ~uri:(Printf.sprintf "doc%d.xml" i) (random_doc rng)
        : Engine.docref)
  done;
  let src = random_query rng ndocs in
  match Compile.compile_string engine src with
  | exception Compile.Unsupported _ -> true (* fine: fragment boundary *)
  | compiled ->
    let naive =
      Naive.eval_query engine compiled.Compile.query
    in
    let return_doc =
      (Rox_joingraph.Graph.vertex compiled.Compile.graph
         compiled.Compile.tail.Tail.return_vertex)
        .Rox_joingraph.Vertex.doc_id
    in
    let tag nodes = List.map (fun p -> (return_doc, p)) (Array.to_list nodes) in
    (* Route 1: ROX with a per-instance seed, trace enabled. *)
    let config =
      { (Rox_core.Session.default_config ()) with Rox_core.Session.seed = seed + 1 }
    in
    let trace = Rox_joingraph.Trace.create () in
    let session = Rox_core.Session.create ~config ~trace () in
    let rox, rox_result = Rox_core.Optimizer.answer session compiled in
    (* Route 2: a random-permutation plan through the classical executor. *)
    let plan = shuffled_plan rng compiled.Compile.graph in
    let planned, _ = Rox_classical.Executor.answer_default compiled plan in
    (* Every legitimate instance must come through the static analysis
       passes without error diagnostics: the graph itself, the replayed
       ROX trace, its executed plan, and the shuffled baseline plan. *)
    let graph = compiled.Compile.graph in
    let no_errors diags = not (List.exists Rox_analysis.Diagnostic.is_error diags) in
    let plan_ids = List.map (fun (e : Rox_joingraph.Edge.t) -> e.Rox_joingraph.Edge.id) plan in
    let analysis_clean =
      no_errors (Rox_analysis.Graph_check.check graph)
      && no_errors (Rox_analysis.Trace_check.check graph trace)
      && no_errors
           (Rox_analysis.Plan_check.check graph rox_result.Rox_core.Optimizer.edge_order)
      && no_errors (Rox_analysis.Plan_check.check graph plan_ids)
    in
    tag rox = naive && tag planned = naive && analysis_clean

let prop_fuzz =
  qtest ~count:120 "ROX = random plan = naive on random instances" QCheck.small_int
    run_instance

(* Single known-seed regressions stay fast to debug. *)
let test_fixed_seeds () =
  List.iter
    (fun seed -> check_bool (Printf.sprintf "seed %d" seed) true (run_instance seed))
    [ 1; 2; 3; 17; 99; 12345 ]

let suite =
  [
    prop_fuzz;
    Alcotest.test_case "fixed fuzz seeds" `Quick test_fixed_seeds;
  ]

(* RX5xx concurrency soundness: the race detector over synthetic
   interleavings and real multi-domain fixtures, and the mutable-global
   lint scanner. *)

open Helpers
module Al = Rox_util.Accesslog
module A = Rox_analysis

let codes diags =
  List.sort_uniq compare (List.map (fun d -> d.A.Diagnostic.code) diags)

(* ---------- synthetic interleavings ---------------------------------- *)

(* Hand-built event streams: the checker is a pure function of
   (sites, events), so known-racy and known-safe schedules can be stated
   exactly without spawning domains. *)

let mk_sites kinds =
  Array.of_list
    (List.mapi
       (fun i k -> { Al.s_name = Printf.sprintf "site%d" i; s_kind = k })
       kinds)

let ev ?(locks = 0) ?(info = 0) seq domain site op =
  { Al.seq; domain; site; op; locks; info }

let test_unlocked_write_races () =
  let sites = mk_sites [ Al.Shared ] in
  let events =
    [| ev 0 0 0 Al.Write; ev 1 1 0 Al.Write |]
  in
  Alcotest.(check (list string)) "RX501" [ "RX501" ]
    (codes (A.Race_check.check ~sites events))

let test_common_lock_clean () =
  let sites = mk_sites [ Al.Shared ] in
  (* Acquire/Release events carry the lock id in [site]; access events
     carry the held-lock bitmask. Both domains guard site 0 with lock 0. *)
  let l = 1 in
  let events =
    [|
      ev 0 0 0 Al.Acquire;
      ev ~locks:l 1 0 0 Al.Write;
      ev ~locks:l 2 0 0 Al.Release;
      ev 3 1 0 Al.Acquire;
      ev ~locks:l 4 1 0 Al.Write;
      ev ~locks:l 5 1 0 Al.Release;
    |]
  in
  Alcotest.(check (list string)) "clean" []
    (codes (A.Race_check.check ~sites events))

let test_hb_ordering_clean () =
  let sites = mk_sites [ Al.Shared ] in
  (* Domain 0 writes, releases token 0; domain 1 acquires it, writes.
     No locks held at either access — only the happens-before edge. *)
  let events =
    [|
      ev 0 0 0 Al.Write;
      ev 1 0 0 Al.Release;
      ev 2 1 0 Al.Acquire;
      ev 3 1 0 Al.Write;
    |]
  in
  Alcotest.(check (list string)) "hb clean" []
    (codes (A.Race_check.check ~sites events))

let test_hb_wrong_direction_races () =
  let sites = mk_sites [ Al.Shared ] in
  (* Acquire before the other side's Release establishes nothing. *)
  let events =
    [|
      ev 0 1 0 Al.Acquire;
      ev 1 1 0 Al.Write;
      ev 2 0 0 Al.Write;
      ev 3 0 0 Al.Release;
    |]
  in
  Alcotest.(check (list string)) "RX501" [ "RX501" ]
    (codes (A.Race_check.check ~sites events))

let test_epoch_race_code () =
  let sites = mk_sites [ Al.Epoch ] in
  let events = [| ev 0 0 0 Al.Write; ev 1 1 0 Al.Read |] in
  Alcotest.(check (list string)) "RX503" [ "RX503" ]
    (codes (A.Race_check.check ~sites events))

let test_confined_leak_code () =
  let sites = mk_sites [ Al.Confined ] in
  let events = [| ev 0 0 0 Al.Write; ev 1 1 0 Al.Write |] in
  let got = codes (A.Race_check.check ~sites events) in
  check_bool "contains RX504" true (List.mem "RX504" got)

let test_single_domain_clean () =
  let sites = mk_sites [ Al.Shared; Al.Epoch; Al.Confined ] in
  let events =
    Array.init 30 (fun i ->
        ev i 0 (i mod 3) (if i mod 2 = 0 then Al.Write else Al.Read))
  in
  Alcotest.(check (list string)) "one domain never races" []
    (codes (A.Race_check.check ~sites events))

let test_split_lock_discipline () =
  let sites = mk_sites [ Al.Shared ] in
  (* Two sequential phases ordered by an hb token (lock 2), each
     guarding the site with a different mutex (locks 0 and 1): every
     access locked, empty candidate set, no manifest race -> RX502. *)
  let events =
    [|
      ev 0 0 0 Al.Acquire;
      ev ~locks:1 1 0 0 Al.Write;
      ev ~locks:1 2 0 0 Al.Release;
      ev 3 0 2 Al.Release (* hb publish *);
      ev 4 1 2 Al.Acquire (* hb acquire *);
      ev 5 1 1 Al.Acquire;
      ev ~locks:2 6 1 0 Al.Write;
      ev ~locks:2 7 1 1 Al.Release;
    |]
  in
  Alcotest.(check (list string)) "RX502" [ "RX502" ]
    (codes (A.Race_check.check ~sites events))

(* Generated interleavings: a schedule where every access holds one
   common lock is clean (no false positives); a lock-free schedule with
   a write on each of two domains always races (no false negatives). *)

let prop_guarded_schedules_clean =
  qtest ~count:150 "guarded interleavings never flagged"
    QCheck.(pair small_int (int_range 2 20))
    (fun (seed, n) ->
      let rng = Rox_util.Xoshiro.create (seed lxor 0x5a5a) in
      let sites = mk_sites [ Al.Shared ] in
      let events = ref [] in
      let seq = ref 0 in
      let push e = events := e :: !events; incr seq in
      for _ = 1 to n do
        let d = Rox_util.Xoshiro.int rng 3 in
        let op = if Rox_util.Xoshiro.int rng 2 = 0 then Al.Write else Al.Read in
        push (ev !seq d 0 Al.Acquire);
        push (ev ~locks:1 !seq d 0 op);
        push (ev ~locks:1 !seq d 0 Al.Release)
      done;
      codes (A.Race_check.check ~sites (Array.of_list (List.rev !events))) = [])

let prop_unguarded_schedules_flagged =
  qtest ~count:150 "unguarded cross-domain writes always flagged"
    QCheck.(pair small_int (int_range 1 10))
    (fun (seed, n) ->
      let rng = Rox_util.Xoshiro.create (seed lxor 0xbeef) in
      let sites = mk_sites [ Al.Shared ] in
      (* Each domain performs n accesses including at least one write;
         random interleave, no locks, no hb edges. *)
      let mk d =
        List.init n (fun i ->
            let op =
              if i = 0 || Rox_util.Xoshiro.int rng 2 = 0 then Al.Write
              else Al.Read
            in
            (d, op))
      in
      let rec interleave a b =
        match (a, b) with
        | [], r | r, [] -> r
        | x :: xs, y :: ys ->
          if Rox_util.Xoshiro.int rng 2 = 0 then x :: interleave xs (y :: ys)
          else y :: interleave (x :: xs) ys
      in
      let schedule = interleave (mk 0) (mk 1) in
      let events =
        Array.of_list (List.mapi (fun i (d, op) -> ev i d 0 op) schedule)
      in
      codes (A.Race_check.check ~sites events) = [ "RX501" ])

(* ---------- real multi-domain fixtures -------------------------------- *)

let test_fixtures_behave_as_seeded () =
  List.iter
    (fun (name, run, _descr, expected) ->
      Alcotest.(check (list string)) name
        (List.sort_uniq compare expected)
        (codes (run ())))
    A.Race_fixtures.all

(* A mutex-guarded LRU hammered from two domains must not be flagged:
   the no-false-positive gate for the real instrumentation. *)
let test_shared_lru_clean () =
  let module L = Rox_cache.Lru.Make (struct
    type t = int

    let equal = Int.equal
    let hash = Hashtbl.hash
  end) in
  let diags =
    A.Race_fixtures.with_recording (fun () ->
        let cache = L.create ~name:"test.shared_lru" ~budget:4096 () in
        A.Race_fixtures.fork_join 2 (fun d ->
            for i = 1 to 100 do
              L.add cache (i land 15) ~weight:8 (d * 1000 + i);
              ignore (L.find cache ((i + d) land 15) : int option)
            done))
  in
  Alcotest.(check (list string)) "shared LRU clean" [] (codes diags)

(* A session confined on two domains must trip RX504 through the real
   Session instrumentation. *)
let test_session_cross_domain_leak () =
  let diags =
    A.Race_fixtures.with_recording (fun () ->
        let session = Rox_core.Session.create () in
        Rox_core.Session.confine session (fun () -> ());
        A.Race_fixtures.fork_join 1 (fun _ ->
            Rox_core.Session.confine session (fun () -> ())))
  in
  check_bool "RX504 reported" true
    (List.mem "RX504" (codes diags))

(* ---------- access log mechanics -------------------------------------- *)

let test_accesslog_disarmed_noop () =
  let was = Al.armed () in
  Al.set_armed false;
  let before = Al.recorded () in
  Al.record ~site:0 Al.Write;
  check_int "no event recorded" before (Al.recorded ());
  Al.set_armed was

let test_accesslog_capacity () =
  let was = Al.armed () in
  Al.set_armed true;
  Al.reset ();
  let site = Al.site ~name:"test.capacity" Al.Shared in
  for _ = 1 to 100 do
    Al.record ~site Al.Write
  done;
  check_int "100 events" 100 (Al.recorded ());
  check_int "none dropped" 0 (Al.dropped ());
  let events = Al.events () in
  check_int "snapshot length" 100 (Array.length events);
  check_bool "sequential seqs" true
    (Array.for_all (fun e -> e.Al.op = Al.Write) events);
  Al.reset ();
  check_int "reset clears" 0 (Al.recorded ());
  Al.set_armed was

let test_accesslog_lockset () =
  let was = Al.armed () in
  Al.set_armed true;
  Al.reset ();
  let site = Al.site ~name:"test.lockset" Al.Shared in
  let l = Al.lock ~name:"test.lockset_mutex" in
  check_bool "lock registered" true (l >= 0);
  Al.with_lock l (fun () -> Al.record ~site Al.Write);
  Al.record ~site Al.Write;
  let events = Al.events () in
  let locked_write =
    Array.to_list events
    |> List.filter (fun e -> e.Al.op = Al.Write)
  in
  (match locked_write with
   | [ w1; w2 ] ->
     check_bool "first write holds the lock" true (w1.Al.locks land (1 lsl l) <> 0);
     check_int "second write holds nothing" 0 w2.Al.locks
   | _ -> Alcotest.fail "expected exactly two writes");
  check_int "lockset restored" 0 (Al.locks_held ());
  Al.set_armed was

(* ---------- lint scanner ---------------------------------------------- *)

let scan src = A.Global_lint.scan_source ~file:"x.ml" src

let names bs = List.map (fun b -> b.A.Global_lint.gb_name) bs

let test_lint_finds_globals () =
  let found =
    names
      (scan
         "let counter = ref 0\n\
          let table = Hashtbl.create 16\n\
          let m = Mutex.create ()\n\
          let a = Atomic.make 0\n\
          let k : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)\n\
          let arr = [| 1; 2 |]\n")
  in
  Alcotest.(check (list string)) "all six"
    [ "counter"; "table"; "m"; "a"; "k"; "arr" ]
    found

let test_lint_skips_functions_and_locals () =
  let found =
    names
      (scan
         "let make () = ref 0\n\
          let with_tbl f =\n\
          \  let t = Hashtbl.create 4 in\n\
          \  f t\n\
          let pure = 1 + 2\n\
          let refs_in_name = prefix\n")
  in
  Alcotest.(check (list string)) "nothing global" [] found

let test_lint_multiline_and_annotated () =
  let found =
    names
      (scan
         "let flag =\n\
          \  ref\n\
          \    (match x with Some _ -> true | None -> false)\n\
          let sites : string array ref = ref [||]\n")
  in
  Alcotest.(check (list string)) "multiline + annotation"
    [ "flag"; "sites" ] found

let test_lint_ignores_comments_and_strings () =
  let found =
    names
      (scan
         "(* let bad = ref 0 *)\n\
          let s = \"let x = ref 0 mutable y\"\n\
          (* nested (* let m = Mutex.create () *) still comment *)\n\
          let ok = 42\n")
  in
  Alcotest.(check (list string)) "no findings" [] found

let test_lint_mutable_fields () =
  let found =
    names
      (scan
         "type t = {\n\
          \  mutable count : int;\n\
          \  name : string;\n\
          \  mutable last : float;\n\
          }\n\
          and other = { mutable x : int }\n\
          type immutable_doc = { body : string }\n")
  in
  Alcotest.(check (list string)) "fields with type names"
    [ "t.count"; "t.last"; "other.x" ]
    found

let test_lint_nested_module_fields () =
  let found =
    names
      (scan
         "module Make (K : S) = struct\n\
          \  type 'v node = {\n\
          \    mutable prev : 'v node option;\n\
          \  }\n\
          end\n")
  in
  Alcotest.(check (list string)) "nested type" [ "node.prev" ] found

let test_capability_wildcards () =
  check_bool "exact" true (A.Capability.name_matches ~pattern:"t.first" "t.first");
  check_bool "wild star" true (A.Capability.name_matches ~pattern:"*" "anything");
  check_bool "prefix wild" true (A.Capability.name_matches ~pattern:"t.*" "t.bytes");
  check_bool "prefix respects dot" false
    (A.Capability.name_matches ~pattern:"t.*" "telemetry.x");
  check_bool "no partial" false (A.Capability.name_matches ~pattern:"t.first" "t.firstly")

let test_lint_check_rx510 () =
  let bindings =
    [
      {
        A.Global_lint.gb_file = "lib/nowhere/fake.ml";
        gb_line = 3;
        gb_kind = A.Capability.Global;
        gb_name = "rogue";
        gb_what = "ref";
      };
    ]
  in
  let rx510 =
    List.filter (fun d -> d.A.Diagnostic.code = "RX510")
      (A.Global_lint.check bindings)
  in
  check_int "one RX510" 1 (List.length rx510);
  check_bool "it is an error" true
    (List.for_all A.Diagnostic.is_error rx510)

let test_lint_check_rx511_stale () =
  (* With no bindings at all, every allowlist entry is stale. *)
  let diags = A.Global_lint.check [] in
  let rx511 = List.filter (fun d -> d.A.Diagnostic.code = "RX511") diags in
  check_int "every entry stale" (List.length A.Capability.allowlist)
    (List.length rx511)

let test_lint_repo_tree_clean () =
  (* The committed tree must lint clean; run from the repo root if the
     test sandbox exposes it, otherwise skip (make lint covers it). *)
  let root =
    List.find_opt
      (fun d -> Sys.file_exists (Filename.concat d "util/accesslog.ml"))
      [ "lib"; "../lib"; "../../lib"; "../../../lib"; "../../../../lib";
        "../../../../../lib" ]
  in
  match root with
  | None -> ()
  | Some root ->
    let report = A.Global_lint.run ~root in
    check_int "repo lints clean" 0
      (List.length report.A.Report.diagnostics)

(* ---------- registry -------------------------------------------------- *)

let test_registry_unique_and_complete () =
  let cs = List.map (fun i -> i.A.Diagnostic.ci_code) A.Diagnostic.registry in
  check_int "codes unique" (List.length cs)
    (List.length (List.sort_uniq compare cs));
  List.iter
    (fun c -> check_bool c true (List.mem c cs))
    [ "RX501"; "RX502"; "RX503"; "RX504"; "RX510"; "RX511" ]

let test_registry_explain () =
  (match A.Diagnostic.explain "RX501" with
   | Some text ->
     check_bool "mentions race" true
       (String.length text > 40)
   | None -> Alcotest.fail "RX501 must explain");
  check_bool "unknown code" true (A.Diagnostic.explain "RX999" = None)

let test_registry_markdown () =
  let md = A.Diagnostic.registry_markdown () in
  List.iter
    (fun i ->
      check_bool i.A.Diagnostic.ci_code true
        (let code = i.A.Diagnostic.ci_code in
         let n = String.length md and cn = String.length code in
         let rec go j =
           j + cn <= n && (String.sub md j cn = code || go (j + 1))
         in
         go 0))
    A.Diagnostic.registry

let suite =
  [
    Alcotest.test_case "unlocked cross-domain write -> RX501" `Quick
      test_unlocked_write_races;
    Alcotest.test_case "common lock -> clean" `Quick test_common_lock_clean;
    Alcotest.test_case "hb edge -> clean" `Quick test_hb_ordering_clean;
    Alcotest.test_case "hb wrong direction -> RX501" `Quick
      test_hb_wrong_direction_races;
    Alcotest.test_case "epoch read/write -> RX503" `Quick test_epoch_race_code;
    Alcotest.test_case "confined leak -> RX504" `Quick test_confined_leak_code;
    Alcotest.test_case "single domain -> clean" `Quick test_single_domain_clean;
    Alcotest.test_case "split locks -> RX502" `Quick test_split_lock_discipline;
    prop_guarded_schedules_clean;
    prop_unguarded_schedules_flagged;
    Alcotest.test_case "fixtures behave as seeded" `Slow
      test_fixtures_behave_as_seeded;
    Alcotest.test_case "shared LRU across domains clean" `Slow
      test_shared_lru_clean;
    Alcotest.test_case "session leak across domains -> RX504" `Slow
      test_session_cross_domain_leak;
    Alcotest.test_case "accesslog disarmed is a no-op" `Quick
      test_accesslog_disarmed_noop;
    Alcotest.test_case "accesslog capacity and reset" `Quick
      test_accesslog_capacity;
    Alcotest.test_case "accesslog lockset tracking" `Quick
      test_accesslog_lockset;
    Alcotest.test_case "lint finds mutable globals" `Quick
      test_lint_finds_globals;
    Alcotest.test_case "lint skips functions and locals" `Quick
      test_lint_skips_functions_and_locals;
    Alcotest.test_case "lint multiline and annotated" `Quick
      test_lint_multiline_and_annotated;
    Alcotest.test_case "lint ignores comments and strings" `Quick
      test_lint_ignores_comments_and_strings;
    Alcotest.test_case "lint mutable fields" `Quick test_lint_mutable_fields;
    Alcotest.test_case "lint nested module fields" `Quick
      test_lint_nested_module_fields;
    Alcotest.test_case "capability wildcards" `Quick test_capability_wildcards;
    Alcotest.test_case "lint check RX510" `Quick test_lint_check_rx510;
    Alcotest.test_case "lint check RX511 stale" `Quick
      test_lint_check_rx511_stale;
    Alcotest.test_case "repo tree lints clean" `Quick
      test_lint_repo_tree_clean;
    Alcotest.test_case "registry unique and complete" `Quick
      test_registry_unique_and_complete;
    Alcotest.test_case "registry explain" `Quick test_registry_explain;
    Alcotest.test_case "registry markdown covers all codes" `Quick
      test_registry_markdown;
  ]

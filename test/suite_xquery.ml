open Rox_xquery
open Rox_joingraph
open Helpers

let q1_text =
  {|let $d := doc("doc0.xml")
for $o in $d//open_auction[.//current/text() < 145],
    $p in $d//person[.//province],
    $i in $d//item[./quantity = 1]
where $o//bidder//personref/@person = $p/@id and
      $o//itemref/@item = $i/@id
return $o|}

(* ---------- Lexer ---------- *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize {|for $a in doc("x.xml")//b[c >= 1.5] return $a|} in
  let expected =
    [
      Lexer.FOR; Lexer.VAR "a"; Lexer.IN; Lexer.DOC; Lexer.LPAREN; Lexer.STRING "x.xml";
      Lexer.RPAREN; Lexer.DSLASH; Lexer.NAME "b"; Lexer.LBRACKET; Lexer.NAME "c";
      Lexer.GE; Lexer.NUMBER 1.5; Lexer.RBRACKET; Lexer.RETURN; Lexer.VAR "a"; Lexer.EOF;
    ]
  in
  check_bool "token stream" true (toks = expected)

let test_lexer_misc () =
  check_bool "assign" true (Lexer.tokenize ":=" = [ Lexer.ASSIGN; Lexer.EOF ]);
  check_bool "axis" true (Lexer.tokenize "parent::x" = [ Lexer.AXIS "parent"; Lexer.NAME "x"; Lexer.EOF ]);
  check_bool "text fun" true (Lexer.tokenize "text()" = [ Lexer.TEXT_FUN; Lexer.EOF ]);
  check_bool "comment skipped" true (Lexer.tokenize "(: note :) $x" = [ Lexer.VAR "x"; Lexer.EOF ]);
  check_bool "fn:doc" true (Lexer.tokenize "fn:doc" = [ Lexer.DOC; Lexer.EOF ]);
  check_bool "ne" true (Lexer.tokenize "!=" = [ Lexer.NE; Lexer.EOF ]);
  check_bool "single quotes" true (Lexer.tokenize "'abc'" = [ Lexer.STRING "abc"; Lexer.EOF ]);
  (match Lexer.tokenize "\"unterminated" with
   | exception Lexer.Lex_error _ -> ()
   | _ -> Alcotest.fail "unterminated string must fail")

(* ---------- Parser ---------- *)

let test_parse_q1 () =
  let q = Parser.parse q1_text in
  check_int "one let" 1 (List.length q.Ast.lets);
  check_int "three fors" 3 (List.length q.Ast.fors);
  check_int "two where atoms" 2 (List.length q.Ast.where);
  check_string "return var" "o" q.Ast.return_var;
  match q.Ast.fors with
  | (v, path) :: _ ->
    check_string "first var" "o" v;
    check_int "one step" 1 (List.length path.Ast.steps);
    (match path.Ast.steps with
     | [ step ] ->
       check_bool "descendant" true (step.Ast.axis = Rox_algebra.Axis.Descendant);
       check_int "one predicate" 1 (List.length step.Ast.preds)
     | _ -> Alcotest.fail "steps")
  | [] -> Alcotest.fail "no fors"

let test_parse_path_forms () =
  let p = Parser.parse_path "$a/b//c/@d" in
  check_int "three steps" 3 (List.length p.Ast.steps);
  (match List.rev p.Ast.steps with
   | last :: _ ->
     check_bool "attr axis" true (last.Ast.axis = Rox_algebra.Axis.Attribute);
     check_bool "attr test" true (last.Ast.test = Ast.Attribute_test "d")
   | [] -> assert false);
  let p = Parser.parse_path "$x/text()" in
  (match p.Ast.steps with
   | [ s ] -> check_bool "text test" true (s.Ast.test = Ast.Text_test)
   | _ -> Alcotest.fail "steps");
  let p = Parser.parse_path "$x/parent::y" in
  (match p.Ast.steps with
   | [ s ] -> check_bool "explicit axis" true (s.Ast.axis = Rox_algebra.Axis.Parent)
   | _ -> Alcotest.fail "steps")

let test_parse_pred_shapes () =
  let p = Parser.parse_path "$d//a[.//b/text() < 5][c = \"v\"][@id]" in
  match p.Ast.steps with
  | [ s ] ->
    check_int "three predicates" 3 (List.length s.Ast.preds);
    (match s.Ast.preds with
     | [ Ast.Value_cmp (_, Ast.Lt, Ast.Num 5.0); Ast.Value_cmp (_, Ast.Eq, Ast.Str "v");
         Ast.Exists inner ] ->
       (match inner.Ast.steps with
        | [ st ] -> check_bool "pred @id" true (st.Ast.test = Ast.Attribute_test "id")
        | _ -> Alcotest.fail "inner steps")
     | _ -> Alcotest.fail "predicate shapes")
  | _ -> Alcotest.fail "steps"

let test_parse_errors () =
  let bad s =
    match Parser.parse s with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.fail ("expected parse error: " ^ s)
  in
  bad "return $x";
  bad "for $a doc(\"x\") return $a";
  bad "for $a in doc(\"x\")//b where $a < $b return $a";
  bad "for $a in doc(\"x\")//b return $a trailing";
  bad "for $a in doc(\"x\")//b[ return $a"

let test_parse_roundtrip_print () =
  let q = Parser.parse q1_text in
  let printed = Format.asprintf "%a" Ast.pp_query q in
  let q2 = Parser.parse printed in
  check_bool "pretty-printed query reparses equal" true (q = q2)

(* ---------- Compile ---------- *)

let xmark_engine () =
  let engine = Rox_storage.Engine.create () in
  let params = Rox_workload.Xmark.scaled 0.02 in
  ignore (Rox_workload.Xmark.generate ~params engine ~uri:"doc0.xml");
  engine

let test_compile_q1_shape () =
  let engine = xmark_engine () in
  let c = Compile.compile_string engine q1_text in
  (* Fig 3.1 shape: 16 vertices (root, open_auction, current, text<145,
     person, province, item, quantity, text=1, bidder, personref, @person,
     @id, itemref, @item, @id) and 17 edges (15 steps + 2 equijoins). *)
  check_int "vertices" 16 (Graph.vertex_count c.Compile.graph);
  check_int "edges" 17 (Graph.edge_count c.Compile.graph);
  check_bool "connected" true (Graph.connected c.Compile.graph);
  let equijoins =
    Array.to_list (Graph.edges c.Compile.graph)
    |> List.filter (fun e -> e.Edge.op = Edge.Equijoin)
  in
  check_int "two equijoins" 2 (List.length equijoins);
  check_int "three tail keys" 3 (Array.length c.Compile.tail.Tail.key_vertices);
  check_int "return is $o" (Compile.vertex_of_var c "o") c.Compile.tail.Tail.return_vertex

let test_compile_dedup_vertices () =
  let engine = xmark_engine () in
  (* $o//bidder used by two where atoms: the vertex is shared. *)
  let q =
    {|let $d := doc("doc0.xml")
for $o in $d//open_auction
where $o//bidder//personref/@person = $d//person/@id and $o//bidder/increase/text() < 5
return $o|}
  in
  let c = Compile.compile_string engine q in
  let labels =
    Array.to_list (Graph.vertices c.Compile.graph) |> List.map Vertex.label
  in
  check_int "one bidder vertex" 1
    (List.length (List.filter (( = ) "bidder") labels))

let test_compile_closure () =
  let engine = Rox_storage.Engine.create () in
  let params = { Rox_workload.Dblp.default_gen with reduction = 400 } in
  ignore (Rox_workload.Dblp.load ~params engine
            (List.map Rox_workload.Dblp.find_venue [ "VLDB"; "ICDE"; "SIGMOD"; "EDBT" ]));
  let q = Rox_workload.Dblp.query_for [ "VLDB.xml"; "ICDE.xml"; "SIGMOD.xml"; "EDBT.xml" ] in
  let c = Compile.compile_string engine q in
  (* Figure 4: 12 vertices, 8 step edges + 3 original + 3 derived equijoins. *)
  check_int "vertices" 12 (Graph.vertex_count c.Compile.graph);
  check_int "edges" 14 (Graph.edge_count c.Compile.graph);
  let derived =
    Array.to_list (Graph.edges c.Compile.graph) |> List.filter (fun e -> e.Edge.derived)
  in
  check_int "three derived" 3 (List.length derived);
  let c2 = Compile.compile_string ~equi_closure:false engine q in
  check_int "no closure" 11 (Graph.edge_count c2.Compile.graph)

let test_compile_errors () =
  let engine = xmark_engine () in
  let bad src =
    match Compile.compile_string engine src with
    | exception Compile.Unsupported _ -> ()
    | _ -> Alcotest.fail ("expected Unsupported: " ^ src)
  in
  bad {|for $a in doc("missing.xml")//x return $a|};
  bad {|for $a in doc("doc0.xml")//x where $b/text() = "v" return $a|};
  bad {|for $a in doc("doc0.xml")//x[y != 3] return $a|}

(* ---------- Naive evaluator on a hand-checked document ---------- *)

let test_naive_hand () =
  let engine, _ = engine_of_xml site_xml in
  let eval q = Naive.eval_string engine q in
  (* All persons. *)
  check_int "3 persons" 3 (List.length (eval {|for $p in doc("doc0.xml")//person return $p|}));
  (* Persons with province: p1 and p3. *)
  check_int "2 with province" 2
    (List.length (eval {|for $p in doc("doc0.xml")//person[.//province] return $p|}));
  (* Auctions with price < 100: a1 only. *)
  check_int "1 cheap auction" 1
    (List.length (eval {|for $a in doc("doc0.xml")//auction[./price < 100] return $a|}));
  (* Join auctions to persons via @person = @id. *)
  let joined =
    eval
      {|for $a in doc("doc0.xml")//auction, $p in doc("doc0.xml")//person
        where $a//ref/@person = $p/@id return $p|}
  in
  (* a1 pairs with p1; a2 with p2 and p3 -> 3 tuples, 3 persons. *)
  check_int "3 joined persons" 3 (List.length joined)

let test_naive_duplicate_semantics () =
  (* Two auctions referencing the same person: $p appears once per distinct
     (a, p) pair. *)
  let engine, _ =
    engine_of_xml
      {|<s><a><r ref="p"/></a><a><r ref="p"/></a><q id="p"/></s>|}
  in
  let out =
    Naive.eval_string engine
      {|for $a in doc("doc0.xml")//a, $q in doc("doc0.xml")//q
        where $a/r/@ref = $q/@id return $q|}
  in
  check_int "q returned twice" 2 (List.length out)

(* ---------- Axis coverage end-to-end ---------- *)

let axis_doc =
  {|<site>
  <people>
    <person id="p1"><name>Ann</name></person>
    <person id="p2"><name>Bob</name></person>
  </people>
  <auctions>
    <auction><ref person="p1"/><price>10</price></auction>
    <auction><ref person="p2"/><price>99</price></auction>
  </auctions>
</site>|}

let check_query_matches_naive engine src =
  let compiled = Compile.compile_string engine src in
  let answer, _ = Rox_core.Optimizer.answer_default compiled in
  let naive = Naive.eval_query engine compiled.Compile.query in
  check_bool src true (List.map (fun p -> (0, p)) (Array.to_list answer) = naive)

let test_axis_queries () =
  let engine, _ = engine_of_xml axis_doc in
  List.iter (check_query_matches_naive engine)
    [
      (* parent *)
      {|for $a in doc("doc0.xml")//ref/parent::auction return $a|};
      (* ancestor *)
      {|for $n in doc("doc0.xml")//name/ancestor::person return $n|};
      (* following-sibling *)
      {|for $p in doc("doc0.xml")//ref/following-sibling::price return $p|};
      (* preceding-sibling *)
      {|for $r in doc("doc0.xml")//price/preceding-sibling::ref return $r|};
      (* descendant-or-self *)
      {|for $x in doc("doc0.xml")/descendant-or-self::auction return $x|};
      (* explicit child *)
      {|for $x in doc("doc0.xml")//auctions/child::auction return $x|};
      (* mixed with predicates *)
      {|for $a in doc("doc0.xml")//auction[./price > 50]/ref return $a|};
    ]

let test_axis_queries_nonempty () =
  (* Guard against vacuous agreement: these queries have known answers. *)
  let engine, _ = engine_of_xml axis_doc in
  let count src =
    let compiled = Compile.compile_string engine src in
    let answer, _ = Rox_core.Optimizer.answer_default compiled in
    Array.length answer
  in
  check_int "two auctions via parent" 2
    (count {|for $a in doc("doc0.xml")//ref/parent::auction return $a|});
  check_int "two persons via ancestor" 2
    (count {|for $n in doc("doc0.xml")//name/ancestor::person return $n|});
  check_int "one expensive ref" 1
    (count {|for $a in doc("doc0.xml")//auction[./price > 50]/ref return $a|})

(* ---------- Tail ---------- *)

let test_tail () =
  let rel =
    Relation.of_pairs ~v1:0 ~v2:1
      { Exec.left = col [| 3; 1; 3; 1 |]; right = col [| 30; 10; 30; 11 |] }
  in
  let spec = { Tail.key_vertices = [| 0; 1 |]; return_vertex = 0 } in
  let out = Tail.apply spec rel in
  (* Distinct pairs: (1,10), (1,11), (3,30); sorted; return column 0. *)
  check_bool "tail output" true (out = [| 1; 1; 3 |]);
  check_int "count" 3 (Tail.count spec rel)

let suite =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer misc" `Quick test_lexer_misc;
    Alcotest.test_case "parse Q1" `Quick test_parse_q1;
    Alcotest.test_case "parse path forms" `Quick test_parse_path_forms;
    Alcotest.test_case "parse predicate shapes" `Quick test_parse_pred_shapes;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "pretty-print roundtrip" `Quick test_parse_roundtrip_print;
    Alcotest.test_case "compile Q1 shape" `Quick test_compile_q1_shape;
    Alcotest.test_case "compile dedups vertices" `Quick test_compile_dedup_vertices;
    Alcotest.test_case "compile closure (Fig 4)" `Quick test_compile_closure;
    Alcotest.test_case "compile errors" `Quick test_compile_errors;
    Alcotest.test_case "naive hand-checked" `Quick test_naive_hand;
    Alcotest.test_case "naive duplicate semantics" `Quick test_naive_duplicate_semantics;
    Alcotest.test_case "axis queries = naive" `Quick test_axis_queries;
    Alcotest.test_case "axis queries nonempty" `Quick test_axis_queries_nonempty;
    Alcotest.test_case "tail" `Quick test_tail;
  ]

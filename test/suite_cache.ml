(* The cross-query cache (lib/cache): the weighted LRU core against a
   reference model, fingerprint identity, epoch invalidation, and — the
   property that justifies the subsystem — cache-on and cache-off runs
   being observationally identical (same answers, same executed trace) on
   random fuzz-style workloads, with the sanitizer cross-checking every
   hit against a fresh execution. *)

open Rox_storage
open Rox_cache
open Helpers
module Trace = Rox_joingraph.Trace

module SLru = Lru.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

(* ---------- Weighted LRU vs a reference model ---------- *)

(* The model is a coldest-first list of (key, weight, value); every
   operation is applied to both the cache and the model, then the cache's
   [iter_coldest_first] order, entry count and byte total must match. *)
let model_total m = List.fold_left (fun a (_, w, _) -> a + w) 0 m

let model_add budget m k w v =
  if w > budget then List.filter (fun (k', _, _) -> k' <> k) m
  else begin
    let m = List.filter (fun (k', _, _) -> k' <> k) m @ [ (k, w, v) ] in
    let rec evict m = if model_total m > budget then evict (List.tl m) else m in
    evict m
  end

let model_find m k =
  if List.exists (fun (k', _, _) -> k' = k) m then
    let e = List.find (fun (k', _, _) -> k' = k) m in
    Some (List.filter (fun (k', _, _) -> k' <> k) m @ [ e ])
  else None

let prop_lru_model =
  qtest ~count:200 "weighted LRU = reference model"
    QCheck.(pair small_int (int_range 5 60))
    (fun (seed, budget) ->
      let rng = Rox_util.Xoshiro.create (seed * 31 + budget) in
      let cache = SLru.create ~name:"test.lru" ~budget () in
      let model = ref [] in
      let ok = ref true in
      for i = 0 to 79 do
        let k = Printf.sprintf "k%d" (Rox_util.Xoshiro.int rng 8) in
        if Rox_util.Xoshiro.int rng 3 = 0 then begin
          (* Counted find: hit must refresh recency in both worlds. *)
          let found = SLru.find cache k in
          match model_find !model k with
          | Some m' ->
            model := m';
            if found = None then ok := false
          | None -> if found <> None then ok := false
        end
        else begin
          (* Weights occasionally exceed the budget to exercise rejection. *)
          let w = Rox_util.Xoshiro.int rng (budget + budget / 2 + 2) in
          SLru.add cache k ~weight:w i;
          model := model_add budget !model k w i
        end;
        let s = SLru.stats cache in
        if s.Lru.bytes > budget then ok := false
      done;
      let actual = ref [] in
      SLru.iter_coldest_first cache (fun k v -> actual := (k, v) :: !actual);
      let actual = List.rev !actual in
      let expected = List.map (fun (k, _, v) -> (k, v)) !model in
      let s = SLru.stats cache in
      !ok && actual = expected
      && s.Lru.entries = List.length !model
      && s.Lru.bytes = model_total !model)

let test_lru_basics () =
  let c = SLru.create ~name:"test.lru" ~budget:10 () in
  SLru.add c "a" ~weight:4 1;
  SLru.add c "b" ~weight:4 2;
  check_bool "both resident" true (SLru.mem c "a" && SLru.mem c "b");
  (* Touch "a" so "b" is the eviction victim. *)
  check_bool "find a" true (SLru.find c "a" = Some 1);
  SLru.add c "c" ~weight:4 3;
  check_bool "b evicted (coldest)" true
    ((not (SLru.mem c "b")) && SLru.mem c "a" && SLru.mem c "c");
  (* Oversize entries are rejected; an oversize replacement also drops the
     stale resident entry rather than serving it. *)
  SLru.add c "a" ~weight:11 9;
  check_bool "oversize drops stale entry" true (not (SLru.mem c "a"));
  let s = SLru.stats c in
  check_int "rejected" 1 s.Lru.rejected;
  check_bool "negative weight raises" true
    (match SLru.add c "x" ~weight:(-1) 0 with
     | _ -> false
     | exception Invalid_argument _ -> true);
  (* A non-positive budget means "cache off": nothing is ever admitted. *)
  let off = SLru.create ~name:"test.lru" ~budget:0 () in
  SLru.add off "a" ~weight:0 1;
  check_bool "budget 0 admits nothing" true (not (SLru.mem off "a"));
  SLru.clear c;
  let s = SLru.stats c in
  check_int "clear empties" 0 s.Lru.entries;
  check_int "clear keeps counters" 1 s.Lru.rejected

(* ---------- Sharded store vs independent single-shard models ---------- *)

(* With rebalancing off, a 4-shard cache must be observationally equal to
   four independent single-shard caches each holding a quarter of the
   budget, with keys routed by [shard_of]: same find answers, same
   per-shard hit/miss/eviction counters, same residency, same
   coldest-first order. This is the property that makes the sharding
   refactor safe: nothing about admission or recency is global. *)
let prop_sharded_model =
  qtest ~count:150 "4-shard LRU = 4 independent single-shard models"
    QCheck.(pair small_int (int_range 8 200))
    (fun (seed, budget) ->
      let rng = Rox_util.Xoshiro.create ((seed * 97) + budget) in
      let sharded =
        SLru.create ~name:"test.shardmodel" ~shards:4 ~rebalance_every:0
          ~budget ()
      in
      let refs =
        Array.init 4 (fun i ->
            SLru.create
              ~name:(Printf.sprintf "test.shardmodel.ref%d" i)
              ~budget:(budget / 4) ())
      in
      let ok = ref true in
      for i = 0 to 199 do
        let k = Printf.sprintf "m%d" (Rox_util.Xoshiro.int rng 24) in
        let r = refs.(SLru.shard_of sharded k) in
        if Rox_util.Xoshiro.int rng 3 = 0 then begin
          if SLru.find_fast sharded k <> SLru.find_fast r k then ok := false;
          if SLru.find sharded k <> SLru.find r k then ok := false
        end
        else begin
          let w = Rox_util.Xoshiro.int rng ((budget / 3) + 2) in
          SLru.add sharded k ~weight:w ~cost:i i;
          SLru.add r k ~weight:w ~cost:i i
        end
      done;
      let per = SLru.shard_stats sharded in
      let counters_match =
        List.for_all
          (fun i ->
            let a = per.(i) and b = SLru.stats refs.(i) in
            a.Lru.hits = b.Lru.hits
            && a.Lru.misses = b.Lru.misses
            && a.Lru.insertions = b.Lru.insertions
            && a.Lru.evictions = b.Lru.evictions
            && a.Lru.rejected = b.Lru.rejected
            && a.Lru.entries = b.Lru.entries
            && a.Lru.bytes = b.Lru.bytes
            && a.Lru.budget = b.Lru.budget)
          [ 0; 1; 2; 3 ]
      in
      let order c =
        let acc = ref [] in
        SLru.iter_coldest_first c (fun k v -> acc := (k, v) :: !acc);
        List.rev !acc
      in
      let expected = List.concat_map (fun i -> order refs.(i)) [ 0; 1; 2; 3 ] in
      !ok && counters_match && order sharded = expected)

(* ---------- Cost-aware admission ---------- *)

let test_cost_aware_eviction () =
  (* The coldest entry is the most expensive to recompute; a cheap one
     sits just above it in the recency order. Plain LRU sacrifices the
     dear entry; the cost-aware policy spares it and counts the swap. *)
  let run policy =
    let c = SLru.create ~name:"test.cost" ~policy ~budget:12 () in
    SLru.add c "dear" ~weight:4 ~cost:1_000_000 1;
    SLru.add c "cheap" ~weight:4 ~cost:10 2;
    SLru.add c "mid" ~weight:4 ~cost:500 3;
    (* The budget is now full: the next insert forces one eviction. *)
    SLru.add c "new" ~weight:4 ~cost:100 4;
    c
  in
  let lru = run Lru.Lru_only in
  check_bool "LRU evicts the coldest (dear)" true
    ((not (SLru.mem lru "dear")) && SLru.mem lru "cheap");
  check_int "no cost evictions under plain LRU" 0
    (SLru.stats lru).Lru.cost_evictions;
  let ca = run Lru.Cost_aware in
  check_bool "cost-aware spares dear, evicts cheap" true
    (SLru.mem ca "dear" && not (SLru.mem ca "cheap"));
  let s = SLru.stats ca in
  check_int "one eviction" 1 s.Lru.evictions;
  check_int "counted as cost-aware" 1 s.Lru.cost_evictions

(* ---------- Budget rebalance ---------- *)

let test_shard_rebalance () =
  let total = 4096 in
  let c =
    SLru.create ~name:"test.rebalance" ~shards:4 ~rebalance_every:8
      ~budget:total ()
  in
  (* Drive every insertion into one shard; after [rebalance_every]
     insertions its budget share must grow while cold shards keep their
     quarter-share floor. *)
  let hot = SLru.shard_of c "r0" in
  let rec hot_keys i acc n =
    if n = 0 then List.rev acc
    else
      let k = Printf.sprintf "r%d" i in
      if SLru.shard_of c k = hot then hot_keys (i + 1) (k :: acc) (n - 1)
      else hot_keys (i + 1) acc n
  in
  List.iter (fun k -> SLru.add c k ~weight:32 0) (hot_keys 0 [] 16);
  let per = SLru.shard_stats c in
  let hot_b = per.(hot).Lru.budget in
  check_bool "hot shard budget grew past its even share" true
    (hot_b > total / 4);
  Array.iteri
    (fun i s ->
      if i <> hot then begin
        check_bool "cold shard keeps its floor" true
          (s.Lru.budget >= total / 16);
        check_bool "cold shard below hot" true (s.Lru.budget < hot_b)
      end)
    per;
  let sum = Array.fold_left (fun a s -> a + s.Lru.budget) 0 per in
  check_bool "shard budgets stay within the total" true (sum <= total);
  check_int "aggregate stats report the configured total" total
    (SLru.stats c).Lru.budget

(* ---------- Two-domain hammer: every hit bit-identical ---------- *)

let test_sharded_hammer_bit_identical () =
  (* Each key's value is a pure function of the key, so whatever domain
     wrote last, any hit — locked or lock-free — must return exactly
     that function's value. *)
  let expected k = Hashtbl.hash ("v:" ^ k) in
  let cache = SLru.create ~name:"test.hammer" ~shards:4 ~budget:65536 () in
  let keys = Array.init 64 (fun i -> Printf.sprintf "h%d" i) in
  Array.iter (fun k -> SLru.add cache k ~weight:8 (expected k)) keys;
  let bad = Atomic.make 0 in
  let work d () =
    for i = 1 to 500 do
      let k = keys.(i * (d + 3) land 63) in
      SLru.add cache k ~weight:8 (expected k);
      (match SLru.find cache k with
       | Some v when v <> expected k -> Atomic.incr bad
       | _ -> ());
      match SLru.find_fast cache k with
      | Some v when v <> expected k -> Atomic.incr bad
      | _ -> ()
    done
  in
  let other = Domain.spawn (work 1) in
  work 0 ();
  Domain.join other;
  check_int "every hit bit-identical to the writer's value" 0
    (Atomic.get bad)

(* ---------- Fingerprints ---------- *)

let prop_fingerprint =
  qtest ~count:200 "fingerprint: content identity" QCheck.small_int (fun seed ->
      let rng = Rox_util.Xoshiro.create seed in
      let arr () = Array.init (Rox_util.Xoshiro.int rng 40) (fun _ -> Rox_util.Xoshiro.int rng 1000) in
      let a = arr () and b = arr () in
      let same = a = b in
      (Fingerprint.table a = Fingerprint.table (Array.copy a))
      && (same || Fingerprint.table a <> Fingerprint.table b)
      && Fingerprint.make ~epoch:1 [ "x"; Fingerprint.table a ]
         <> Fingerprint.make ~epoch:2 [ "x"; Fingerprint.table a ]
      && Fingerprint.option_table None <> Fingerprint.option_table (Some [||]))

(* ---------- End-to-end: cache-on = cache-off, epochs, reuse ---------- *)

let queries =
  [
    {|for $p in doc("doc0.xml")//person[./address]
return $p|};
    {|for $a in doc("doc0.xml")//auction,
    $p in doc("doc0.xml")//person
where $a/ref/@person = $p/@id
return $p|};
  ]

let run_with ?cache engine source =
  let compiled = Rox_xquery.Compile.compile_string engine source in
  let trace = Trace.create () in
  let session = Rox_core.Session.create ?cache ~trace () in
  let answer, _ = Rox_core.Optimizer.answer session compiled in
  (answer, trace)

let non_cache_events trace =
  List.filter
    (function Trace.Cache_lookup _ -> false | _ -> true)
    (Trace.events trace)

let with_sanitizer f =
  let prev = Rox_algebra.Sanitize.default_mode () in
  Rox_algebra.Sanitize.set_default_mode true;
  Fun.protect
    ~finally:(fun () -> Rox_algebra.Sanitize.set_default_mode prev)
    f

let test_epoch_invalidation () =
  let engine, _ = engine_of_xml site_xml in
  let store = Store.create engine in
  with_sanitizer (fun () ->
      let q = List.nth queries 1 in
      let base, _ = run_with engine q in
      let _, _ = run_with ~cache:store engine q in
      let warm, warm_trace = run_with ~cache:store engine q in
      check_bool "warm run hits" true (Trace.cache_hits warm_trace > 0);
      check_bool "warm run replays estimates fully" true
        (Trace.cache_hits ~store:`Estimate warm_trace
         = Trace.cache_lookups ~store:`Estimate warm_trace);
      check_bool "warm answer" true (warm = base);
      (* Bumping the epoch retires every key minted before it: the next
         run finds none of the earlier entries (any hits it reports are
         its own same-epoch insertions being reused within the run) and
         still answers correctly. *)
      let before = Store.epoch store in
      Engine.bump_epoch engine;
      check_int "store sees the new epoch" (before + 1) (Store.epoch store);
      let cold, cold_trace = run_with ~cache:store engine q in
      check_int "no stale relation hits after bump" 0
        (Trace.cache_hits ~store:`Relation cold_trace);
      check_bool "estimates recompute after bump" true
        (Trace.cache_hits ~store:`Estimate cold_trace
         < Trace.cache_lookups ~store:`Estimate cold_trace);
      check_bool "post-bump answer" true (cold = base))

let test_estimate_reuse () =
  let engine, _ = engine_of_xml site_xml in
  let store = Store.create engine in
  with_sanitizer (fun () ->
      let q = List.nth queries 1 in
      let base, _ = run_with engine q in
      let a1, t1 = run_with ~cache:store engine q in
      let a2, t2 = run_with ~cache:store engine q in
      let executed t = List.length (Trace.execution_order t) in
      check_bool "answers stable" true (a1 = base && a2 = base);
      (* An identical repeat on an unchanged engine replays entirely from
         cache: every edge execution and every sampled estimate hits. *)
      check_int "second run: all relations from cache" (executed t2)
        (Trace.cache_hits ~store:`Relation t2);
      check_int "second run: all estimates from cache"
        (Trace.cache_lookups ~store:`Estimate t2)
        (Trace.cache_hits ~store:`Estimate t2);
      check_bool "second run reuses first run's estimates" true
        (Trace.cache_hits ~store:`Estimate t2
         >= Trace.cache_lookups ~store:`Estimate t1
            - Trace.cache_hits ~store:`Estimate t1
         && Trace.cache_hits ~store:`Estimate t2 > 0);
      ignore (executed t1))

(* The counter-vs-gauge rule of metrics.mli, exercised end-to-end: a
   store's residency is a gauge, so observing it into two registries and
   absorbing both into one aggregate must report the residency ONCE
   (gauges merge with Float.max — idempotent), while counters genuinely
   add. A residency that doubled here would mean add_into treats gauges
   as counters. *)
let test_double_absorb_gauge_not_summed () =
  let engine, _ = engine_of_xml site_xml in
  let store = Store.create engine in
  (* Populate the store so the residency gauge is non-zero. *)
  let _ = run_with ~cache:store engine (List.nth queries 1) in
  let bytes =
    let s = Store.stats store in
    float_of_int (s.Store.relations.Lru.bytes + s.Store.estimates.Lru.bytes)
  in
  Alcotest.(check bool) "store is non-empty" true (bytes > 0.0);
  let m1 = Rox_telemetry.Metrics.create () in
  let m2 = Rox_telemetry.Metrics.create () in
  Store.observe_into store m1;
  Store.observe_into store m2;
  Rox_telemetry.Metrics.incr m1.Rox_telemetry.Metrics.queries_served;
  Rox_telemetry.Metrics.incr m2.Rox_telemetry.Metrics.queries_served;
  let total = Rox_telemetry.Metrics.create () in
  Rox_telemetry.Metrics.add_into ~into:total m1;
  Rox_telemetry.Metrics.add_into ~into:total m2;
  Alcotest.(check (float 0.0))
    "residency gauge maxed, not summed" bytes
    total.Rox_telemetry.Metrics.cache_resident_bytes.Rox_telemetry.Metrics.g_value;
  Alcotest.(check int)
    "counters still add" 2
    total.Rox_telemetry.Metrics.queries_served.Rox_telemetry.Metrics.c_value

(* Cache-on vs cache-off on random documents: identical answers and an
   identical execution trace (modulo the Cache_lookup annotations), cold
   and warm, sanitizer armed so every hit is cross-checked bit-identical
   against a fresh execution. *)
let prop_cache_transparent =
  qtest ~count:60 "cache on = cache off on random instances" QCheck.small_int
    (fun seed ->
      let engine, _ = engine_of_trees [ random_tree seed ] in
      let store = Store.create engine in
      with_sanitizer (fun () ->
          List.for_all
            (fun q ->
              match run_with engine q with
              | exception Rox_xquery.Compile.Unsupported _ -> true
              | exception Rox_xquery.Compile.Rejected _ -> true
              | base_answer, base_trace ->
                let a1, t1 = run_with ~cache:store engine q in
                let a2, t2 = run_with ~cache:store engine q in
                a1 = base_answer && a2 = base_answer
                && non_cache_events t1 = non_cache_events base_trace
                && non_cache_events t2 = non_cache_events base_trace)
            queries))

let suite =
  [
    prop_lru_model;
    Alcotest.test_case "weighted LRU basics" `Quick test_lru_basics;
    prop_sharded_model;
    Alcotest.test_case "cost-aware eviction" `Quick test_cost_aware_eviction;
    Alcotest.test_case "shard budget rebalance" `Quick test_shard_rebalance;
    Alcotest.test_case "2-domain hammer hits bit-identical" `Slow
      test_sharded_hammer_bit_identical;
    prop_fingerprint;
    Alcotest.test_case "epoch bump invalidates" `Quick test_epoch_invalidation;
    Alcotest.test_case "repeat run replays from cache" `Quick test_estimate_reuse;
    Alcotest.test_case "double absorb: gauges max, counters add" `Quick
      test_double_absorb_gauge_not_summed;
    prop_cache_transparent;
  ]

open Rox_storage
open Rox_shred
open Helpers

let engine_and_doc xml =
  let engine, docref = engine_of_xml xml in
  (engine, docref)

(* ---------- Element index ---------- *)

let test_element_index () =
  let _, r = engine_and_doc "<a><b/><c><b x=\"1\"/></c><b/></a>" in
  let bs = Element_index.lookup_name r.Engine.elements "b" in
  check_int "three b" 3 (clen bs);
  check_bool "sorted" true (Rox_algebra.Nodeset.is_sorted_dedup (arr bs));
  check_int "one a" 1 (clen (Element_index.lookup_name r.Engine.elements "a"));
  check_int "missing" 0 (clen (Element_index.lookup_name r.Engine.elements "zz"));
  Rox_util.Column.iter
    (fun pre -> check_bool "kind elem" true (Doc.kind r.Engine.doc pre = Nodekind.Elem))
    bs

let test_attr_index () =
  let _, r = engine_and_doc {|<a x="1"><b x="2" y="3"/><c y="4"/></a>|} in
  let xs = Element_index.lookup_attr_name r.Engine.elements "x" in
  check_int "two @x" 2 (clen xs);
  Rox_util.Column.iter
    (fun pre -> check_bool "kind attr" true (Doc.kind r.Engine.doc pre = Nodekind.Attr))
    xs;
  check_int "two @y" 2 (clen (Element_index.lookup_attr_name r.Engine.elements "y"))

let prop_element_index_complete =
  qtest ~count:100 "element index = scan" QCheck.small_int (fun seed ->
      let engine = Engine.create () in
      let r = Engine.add_tree engine (random_tree seed) in
      let doc = r.Engine.doc in
      let ok = ref true in
      for pre = 1 to Doc.node_count doc - 1 do
        if Doc.kind doc pre = Nodekind.Elem then begin
          let indexed = Element_index.lookup r.Engine.elements (Doc.name_id doc pre) in
          if not (Rox_util.Column.mem indexed pre) then ok := false
        end
      done;
      !ok)

(* ---------- Kind index ---------- *)

let test_kind_index () =
  let _, r = engine_and_doc {|<a x="1">t1<b>t2</b><!--c--><?p i?></a>|} in
  check_int "elems" 2 (Kind_index.count r.Engine.kinds Nodekind.Elem);
  check_int "texts" 2 (Kind_index.count r.Engine.kinds Nodekind.Text);
  check_int "attrs" 1 (Kind_index.count r.Engine.kinds Nodekind.Attr);
  check_int "comments" 1 (Kind_index.count r.Engine.kinds Nodekind.Comment);
  check_int "pis" 1 (Kind_index.count r.Engine.kinds Nodekind.Pi);
  check_int "all" 7 (clen (Kind_index.all r.Engine.kinds))

(* ---------- Value index ---------- *)

let test_value_index_eq () =
  let engine, r = engine_and_doc {|<a><t>x</t><t>y</t><t>x</t><b v="x"/><b v="y"/></a>|} in
  let vid s = Option.get (Engine.value_id engine s) in
  check_int "text x" 2 (Value_index.text_eq_count r.Engine.values (vid "x"));
  check_int "text y" 1 (Value_index.text_eq_count r.Engine.values (vid "y"));
  let name_v = Option.get (Engine.qname_id engine "v") in
  check_int "attr v=x" 1 (Value_index.attr_eq_count r.Engine.values ~name_id:name_v ~value_id:(vid "x"));
  check_int "any-name attr x" 1 (clen (Value_index.attr_eq_any_name r.Engine.values ~value_id:(vid "x")))

let test_value_index_range () =
  let _, r =
    engine_and_doc "<a><n>10</n><n>20</n><n>30</n><n>notnum</n><n>25.5</n></a>"
  in
  let vi = r.Engine.values in
  check_int "numeric count" 4 (Value_index.numeric_text_count vi);
  check_int "range [10,30]" 4 (Value_index.text_range_count vi ~lo:10.0 ~hi:30.0 ());
  check_int "range [15,26]" 2 (Value_index.text_range_count vi ~lo:15.0 ~hi:26.0 ());
  check_int "range (,19]" 1 (Value_index.text_range_count vi ~hi:19.0 ());
  check_int "range [21,)" 2 (Value_index.text_range_count vi ~lo:21.0 ());
  check_int "open range" 4 (Value_index.text_range_count vi ());
  let nodes = Value_index.text_range vi ~lo:15.0 ~hi:26.0 () in
  check_bool "sorted on pre" true (Rox_algebra.Nodeset.is_sorted_dedup (arr nodes));
  check_int "count = length" 2 (clen nodes)

let test_range_boundaries () =
  let _, r = engine_and_doc "<a><n>5</n><n>5</n><n>6</n></a>" in
  let vi = r.Engine.values in
  check_int "inclusive both" 3 (Value_index.text_range_count vi ~lo:5.0 ~hi:6.0 ());
  check_int "exactly 5" 2 (Value_index.text_range_count vi ~lo:5.0 ~hi:5.0 ());
  check_int "empty below" 0 (Value_index.text_range_count vi ~hi:4.9 ());
  check_int "empty above" 0 (Value_index.text_range_count vi ~lo:6.1 ())

(* ---------- Sampling ---------- *)

let prop_sampling =
  qtest ~count:100 "sample: size, sorted, subset" QCheck.(pair small_int (int_range 0 50))
    (fun (seed, tau) ->
      let rng = Rox_util.Xoshiro.create seed in
      let table = col (Array.init 200 (fun i -> i * 3)) in
      let s = Sampling.sample rng table tau in
      clen s = min tau 200
      && Rox_algebra.Nodeset.is_sorted_dedup (arr s)
      && Array.for_all (fun x -> Rox_util.Column.mem table x) (arr s))

let test_sample_all () =
  let rng = Rox_util.Xoshiro.create 3 in
  let table = col [| 1; 5; 9 |] in
  check_bool "tau >= n copies" true (Rox_util.Column.equal (Sampling.sample rng table 10) table)

let test_sample_fraction () =
  let rng = Rox_util.Xoshiro.create 3 in
  let table = col (Array.init 100 (fun i -> i)) in
  check_int "half" 50 (clen (Sampling.sample_fraction rng table 0.5));
  check_int "at least one" 1 (clen (Sampling.sample_fraction rng table 0.0001));
  check_int "empty table" 0 (clen (Sampling.sample_fraction rng Rox_util.Column.empty 0.5))

(* Boundary and validation behavior of the sampling entry points. *)
let test_sampling_boundaries () =
  let rng = Rox_util.Xoshiro.create 5 in
  let table = col (Array.init 10 (fun i -> i)) in
  let raises f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check_bool "negative tau rejected" true
    (raises (fun () -> Sampling.sample rng table (-1)));
  check_bool "fraction < 0 rejected" true
    (raises (fun () -> Sampling.sample_fraction rng table (-0.1)));
  check_bool "fraction > 1 rejected" true
    (raises (fun () -> Sampling.sample_fraction rng table 1.5));
  check_bool "fraction NaN rejected" true
    (raises (fun () -> Sampling.sample_fraction rng table Float.nan));
  check_int "tau 0 is empty" 0 (clen (Sampling.sample rng table 0));
  check_int "tau 0 of empty" 0 (clen (Sampling.sample rng Rox_util.Column.empty 0));
  check_int "fraction 0.0 is empty" 0
    (clen (Sampling.sample_fraction rng table 0.0));
  check_bool "fraction 1.0 is the whole table" true
    (Rox_util.Column.equal (Sampling.sample_fraction rng table 1.0) table);
  check_int "fraction 1.0 of empty" 0
    (clen (Sampling.sample_fraction rng Rox_util.Column.empty 1.0))

(* ---------- Engine ---------- *)

let test_engine_registry () =
  let engine = Engine.create () in
  let r0 = Engine.add_tree engine ~uri:"one.xml" (Rox_xmldom.Xml_parser.parse_string "<a/>") in
  let r1 = Engine.add_tree engine ~uri:"two.xml" (Rox_xmldom.Xml_parser.parse_string "<b/>") in
  check_int "ids in order" 0 (Doc.id r0.Engine.doc);
  check_int "ids in order" 1 (Doc.id r1.Engine.doc);
  check_int "count" 2 (Engine.doc_count engine);
  check_bool "find by uri" true (Engine.find_uri engine "two.xml" <> None);
  check_bool "find missing" true (Engine.find_uri engine "zzz.xml" = None);
  (match Engine.get engine 5 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "unknown id must fail")

let test_engine_shared_values () =
  let engine = Engine.create () in
  let r0 = Engine.add_tree engine ~uri:"a.xml" (Rox_xmldom.Xml_parser.parse_string "<a>shared</a>") in
  let r1 = Engine.add_tree engine ~uri:"b.xml" (Rox_xmldom.Xml_parser.parse_string "<b>shared</b>") in
  check_int "cross-doc value ids equal" (Doc.value_id r0.Engine.doc 2) (Doc.value_id r1.Engine.doc 2)

let suite =
  [
    Alcotest.test_case "element index" `Quick test_element_index;
    Alcotest.test_case "attr index" `Quick test_attr_index;
    prop_element_index_complete;
    Alcotest.test_case "kind index" `Quick test_kind_index;
    Alcotest.test_case "value index eq" `Quick test_value_index_eq;
    Alcotest.test_case "value index range" `Quick test_value_index_range;
    Alcotest.test_case "range boundaries" `Quick test_range_boundaries;
    prop_sampling;
    Alcotest.test_case "sample all" `Quick test_sample_all;
    Alcotest.test_case "sample fraction" `Quick test_sample_fraction;
    Alcotest.test_case "sampling boundaries" `Quick test_sampling_boundaries;
    Alcotest.test_case "engine registry" `Quick test_engine_registry;
    Alcotest.test_case "engine shared values" `Quick test_engine_shared_values;
  ]

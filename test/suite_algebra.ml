open Rox_storage
open Rox_shred
open Rox_algebra
open Helpers

(* ---------- Axis ---------- *)

let test_axis_reverse_involutive () =
  Array.iter
    (fun axis ->
      if axis <> Axis.Attribute then
        check_bool
          ("reverse involutive " ^ Axis.to_string axis)
          true
          (Axis.reverse (Axis.reverse axis) = axis))
    Axis.all;
  check_bool "attribute reverses to parent" true (Axis.reverse Axis.Attribute = Axis.Parent)

let test_axis_strings () =
  Array.iter
    (fun axis ->
      if axis <> Axis.Attribute then
        check_bool "of_string . to_string = id" true (Axis.of_string (Axis.to_string axis) = axis))
    Axis.all;
  check_string "short //" "//" (Axis.short_label Axis.Descendant);
  check_string "short /" "/" (Axis.short_label Axis.Child);
  (match Axis.of_string "sideways" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "unknown axis must fail")

(* ---------- Staircase vs naive reference ---------- *)

let kinds_of engine doc_id =
  let r = Engine.get engine doc_id in
  r.Engine.kinds

(* Check all axes against the navigation-based reference on random docs,
   with candidates = all nodes of the doc. *)
let staircase_matches_naive seed axis =
  let engine, _ = engine_of_trees [ random_tree seed ] in
  let r = Engine.get engine 0 in
  let doc = r.Engine.doc in
  let n = Doc.node_count doc in
  let rng = Rox_util.Xoshiro.create (seed + 1) in
  (* A random sorted duplicate-free context. *)
  let k = 1 + Rox_util.Xoshiro.int rng (max 1 (n - 1)) in
  let context = col (Rox_util.Xoshiro.sample_without_replacement rng n k) in
  let candidates = Kind_index.all (kinds_of engine 0) in
  let result = Staircase.join ~doc ~axis ~context candidates in
  let expected =
    Array.to_list (arr context)
    |> List.concat_map (fun c -> naive_axis engine ~doc_id:0 ~pre:c axis)
    |> List.filter (fun p -> p <> 0) (* candidates exclude the virtual root *)
    |> List.sort_uniq compare
  in
  Array.to_list (arr result) = expected

let axis_props =
  Array.to_list Axis.all
  |> List.map (fun axis ->
         qtest ~count:60
           (Printf.sprintf "staircase %s = naive" (Axis.to_string axis))
           QCheck.small_int
           (fun seed -> staircase_matches_naive seed axis))

let test_staircase_desc_restricted () =
  let engine, r = engine_of_xml "<a><b><c/><c/></b><c/><d><c/></d></a>" in
  ignore engine;
  let doc = r.Engine.doc in
  let cs = Element_index.lookup_name r.Engine.elements "c" in
  (* descendants of <b> restricted to c: the two nested c's. *)
  let bs = Element_index.lookup_name r.Engine.elements "b" in
  let result = Staircase.join ~doc ~axis:Axis.Descendant ~context:bs cs in
  check_int "two c under b" 2 (clen result)

let test_staircase_pairs_grouped () =
  (* iter_pairs must emit in ascending context-index order (cut-off contract). *)
  let _, r = engine_of_xml "<a><b><x/><x/></b><b><x/></b></a>" in
  let doc = r.Engine.doc in
  let bs = Element_index.lookup_name r.Engine.elements "b" in
  let xs = Element_index.lookup_name r.Engine.elements "x" in
  let seen = ref [] in
  Staircase.iter_pairs ~doc ~axis:Axis.Descendant ~context:bs ~candidates:xs (fun cidx _ s ->
      seen := (cidx, s) :: !seen);
  let seen = List.rev !seen in
  check_int "three pairs" 3 (List.length seen);
  check_bool "grouped by context" true
    (List.map fst seen = List.sort compare (List.map fst seen))

let test_staircase_count_vs_pairs () =
  let _, r = engine_of_xml site_xml in
  let doc = r.Engine.doc in
  let persons = Element_index.lookup_name r.Engine.elements "person" in
  let all = Kind_index.all r.Engine.kinds in
  let n = ref 0 in
  Staircase.iter_pairs ~doc ~axis:Axis.Descendant ~context:persons ~candidates:all
    (fun _ _ _ -> incr n);
  check_int "count = pairs" !n
    (Staircase.count ~doc ~axis:Axis.Descendant ~context:persons all)

let test_staircase_cost_charged () =
  let _, r = engine_of_xml site_xml in
  let doc = r.Engine.doc in
  let counter = Cost.new_counter () in
  let meter = Cost.execution_meter counter in
  let persons = Element_index.lookup_name r.Engine.elements "person" in
  ignore (Staircase.join ~meter ~doc ~axis:Axis.Descendant ~context:persons (Kind_index.all r.Engine.kinds));
  check_bool "execution work recorded" true (Cost.read counter Cost.Execution > 0);
  check_int "sampling untouched" 0 (Cost.read counter Cost.Sampling)

(* ---------- Value joins ---------- *)

let join_doc =
  {|<a>
     <l><t>x</t><t>y</t><t>x</t><t>z</t></l>
     <r><t>x</t><t>z</t><t>z</t><t>w</t></r>
   </a>|}

let pairs_of_iter iter =
  let out = ref [] in
  iter (fun _ o i -> out := (o, i) :: !out);
  List.sort compare !out

let test_value_join_algorithms_agree () =
  let _, r = engine_of_xml join_doc in
  let doc = r.Engine.doc in
  (* left = texts under <l>, right = texts under <r>. *)
  let l = Element_index.lookup_name r.Engine.elements "l" in
  let rr = Element_index.lookup_name r.Engine.elements "r" in
  let texts = Kind_index.lookup r.Engine.kinds Nodekind.Text in
  let left = Staircase.join ~doc ~axis:Axis.Descendant ~context:l texts in
  let right = Staircase.join ~doc ~axis:Axis.Descendant ~context:rr texts in
  let hash =
    pairs_of_iter (fun f ->
        Value_join.iter_hash ~outer_doc:doc ~outer:left ~inner_doc:doc ~inner:right f)
  in
  let merge =
    pairs_of_iter (fun f ->
        Value_join.iter_merge ~outer_doc:doc ~outer:left ~inner_doc:doc ~inner:right f)
  in
  let index_nl =
    pairs_of_iter (fun f ->
        Value_join.iter_index_nl ~outer_doc:doc ~outer:left
          ~inner:{ Value_join.docref = r; side = Value_join.Inner_text; restrict = Some right }
          f)
  in
  (* x matches x (2 left x's times 1 right x) + z matches z (1x2) = 4 pairs. *)
  check_int "hash pair count" 4 (List.length hash);
  check_bool "merge = hash" true (merge = hash);
  check_bool "index_nl = hash" true (index_nl = hash)

let test_index_nl_unrestricted () =
  let _, r = engine_of_xml join_doc in
  let doc = r.Engine.doc in
  let l = Element_index.lookup_name r.Engine.elements "l" in
  let texts = Kind_index.lookup r.Engine.kinds Nodekind.Text in
  let left = Staircase.join ~doc ~axis:Axis.Descendant ~context:l texts in
  (* Unrestricted inner: matches all text nodes with equal values, including
     the left ones themselves. *)
  let out = ref 0 in
  Value_join.iter_index_nl ~outer_doc:doc ~outer:left
    ~inner:{ Value_join.docref = r; side = Value_join.Inner_text; restrict = None }
    (fun _ _ _ -> incr out);
  (* x:2 left -> 3 total each = 6; y:1 -> 1; z:1 -> 3; total 10. *)
  check_int "unrestricted matches" 10 !out

let test_attr_value_join () =
  let _, r = engine_of_xml {|<a><p id="1"/><p id="2"/><q ref="2"/><q ref="3"/></a>|} in
  let doc = r.Engine.doc in
  let refs = Element_index.lookup_attr_name r.Engine.elements "ref" in
  let id_name = Option.get (Rox_util.Str_pool.find (Doc.qname_pool doc) "id") in
  let out = ref [] in
  Value_join.iter_index_nl ~outer_doc:doc ~outer:refs
    ~inner:{ Value_join.docref = r; side = Value_join.Inner_attr id_name; restrict = None }
    (fun _ o i -> out := (o, i) :: !out);
  check_int "one match" 1 (List.length !out)

(* ---------- Selection ---------- *)

let test_selection () =
  let _, r = engine_of_xml "<a><n>5</n><n>15</n><n>x</n><n>10</n></a>" in
  let doc = r.Engine.doc in
  let texts = Kind_index.lookup r.Engine.kinds Nodekind.Text in
  let count pred = clen (Selection.filter ~doc ~pred texts) in
  check_int "lt" 2 (count (Selection.Lt 15.0));
  check_int "le" 3 (count (Selection.Le 15.0));
  check_int "gt" 1 (count (Selection.Gt 10.0));
  check_int "ge" 2 (count (Selection.Ge 10.0));
  check_int "between" 2 (count (Selection.Between (5.0, 10.0)));
  check_int "eq string" 1 (count (Selection.Eq "x"));
  check_int "eq number-as-string" 1 (count (Selection.Eq "15"));
  check_int "non-numeric excluded" 0 (count (Selection.Lt 4.0))

(* ---------- Cutoff ---------- *)

(* Synthetic operator: every outer tuple produces [hits] results. *)
let uniform_op ~outer_len ~hits emit =
  for oi = 0 to outer_len - 1 do
    for h = 0 to hits - 1 do
      emit oi ((oi * hits) + h)
    done
  done

let test_cutoff_completes () =
  let c = Cutoff.run ~limit:1000 ~outer_len:10 ~iter:(uniform_op ~outer_len:10 ~hits:3) in
  check_bool "completed" true c.Cutoff.completed;
  check_int "produced" 30 c.Cutoff.produced;
  check_bool "fraction 1" true (c.Cutoff.fraction = 1.0);
  check_bool "est exact" true (c.Cutoff.est = 30.0)

let test_cutoff_limits () =
  let c = Cutoff.run ~limit:10 ~outer_len:100 ~iter:(uniform_op ~outer_len:100 ~hits:5) in
  check_bool "not completed" true (not c.Cutoff.completed);
  check_int "produced exactly limit" 10 c.Cutoff.produced;
  (* 10 results = 2 outer tuples consumed; f = 2/100; est = 10 / 0.02 = 500. *)
  check_int "consumed" 2 c.Cutoff.consumed_outer;
  check_bool "extrapolation exact on uniform data" true (abs_float (c.Cutoff.est -. 500.0) < 1e-9)

let test_cutoff_empty_outer () =
  let c = Cutoff.run ~limit:10 ~outer_len:0 ~iter:(fun _ -> ()) in
  check_bool "completed" true c.Cutoff.completed;
  check_bool "est 0" true (c.Cutoff.est = 0.0)

let test_cutoff_distinct () =
  let c = Cutoff.run ~limit:100 ~outer_len:3 ~iter:(fun emit ->
      emit 0 5; emit 1 5; emit 2 4) in
  check_bool "dedup sorted" true (Cutoff.out_distinct c = [| 4; 5 |]);
  check_bool "raw keeps order" true (c.Cutoff.out = [| 5; 5; 4 |])

(* ---------- Nodeset ---------- *)

let sorted_set = QCheck.map (fun l -> Array.of_list (List.sort_uniq compare l)) QCheck.(list small_int)

let prop_intersect =
  qtest "intersect = filter mem" QCheck.(pair sorted_set sorted_set) (fun (a, b) ->
      Nodeset.intersect a b
      = Array.of_list
          (List.filter (fun x -> Array.exists (( = ) x) b) (Array.to_list a)))

let prop_union =
  qtest "union = sort_uniq append" QCheck.(pair sorted_set sorted_set) (fun (a, b) ->
      Nodeset.union a b
      = Array.of_list (List.sort_uniq compare (Array.to_list a @ Array.to_list b)))

let prop_difference =
  qtest "difference = filter not-mem" QCheck.(pair sorted_set sorted_set) (fun (a, b) ->
      Nodeset.difference a b
      = Array.of_list
          (List.filter (fun x -> not (Array.exists (( = ) x) b)) (Array.to_list a)))

let prop_of_unsorted =
  qtest "of_unsorted sorts and dedups" QCheck.(array small_int) (fun a ->
      Nodeset.of_unsorted a = Array.of_list (List.sort_uniq compare (Array.to_list a)))

(* ---------- Cost ---------- *)

let test_cost_buckets () =
  let c = Cost.new_counter () in
  Cost.charge (Some (Cost.sampling_meter c)) 5;
  Cost.charge (Some (Cost.execution_meter c)) 7;
  Cost.charge None 1000;
  check_int "sampling" 5 (Cost.read c Cost.Sampling);
  check_int "execution" 7 (Cost.read c Cost.Execution);
  check_int "total" 12 (Cost.total c);
  Cost.reset c;
  check_int "reset" 0 (Cost.total c)

let suite =
  [
    Alcotest.test_case "axis reverse" `Quick test_axis_reverse_involutive;
    Alcotest.test_case "axis strings" `Quick test_axis_strings;
  ]
  @ axis_props
  @ [
      Alcotest.test_case "staircase desc restricted" `Quick test_staircase_desc_restricted;
      Alcotest.test_case "staircase pairs grouped" `Quick test_staircase_pairs_grouped;
      Alcotest.test_case "staircase count" `Quick test_staircase_count_vs_pairs;
      Alcotest.test_case "staircase cost" `Quick test_staircase_cost_charged;
      Alcotest.test_case "value join algorithms agree" `Quick test_value_join_algorithms_agree;
      Alcotest.test_case "index nl unrestricted" `Quick test_index_nl_unrestricted;
      Alcotest.test_case "attr value join" `Quick test_attr_value_join;
      Alcotest.test_case "selection" `Quick test_selection;
      Alcotest.test_case "cutoff completes" `Quick test_cutoff_completes;
      Alcotest.test_case "cutoff limits" `Quick test_cutoff_limits;
      Alcotest.test_case "cutoff empty outer" `Quick test_cutoff_empty_outer;
      Alcotest.test_case "cutoff distinct" `Quick test_cutoff_distinct;
      prop_intersect;
      prop_union;
      prop_difference;
      prop_of_unsorted;
      Alcotest.test_case "cost buckets" `Quick test_cost_buckets;
    ]

(* Cross-cutting property tests on random documents: operator equivalences
   and sampling invariants that the targeted suites don't cover. *)

open Rox_storage
open Rox_shred
open Rox_algebra
open Rox_joingraph
open Helpers

let random_engine seed =
  let engine, _ = engine_of_trees [ random_tree seed ] in
  (engine, Engine.get engine 0)

let random_context rng doc =
  let n = Doc.node_count doc in
  let k = 1 + Rox_util.Xoshiro.int rng (max 1 (n - 1)) in
  Rox_util.Xoshiro.sample_without_replacement rng n k

(* Step pairs are direction-independent: executing the reverse axis from
   the other side yields the same pair set. The engine only ever reverses
   an edge with the *target vertex's domain* as the new context, which is
   kind-restricted (attribute vertices hold attribute nodes, element/text
   vertices never do) — the test models that contract. *)
let prop_step_direction_symmetry =
  qtest ~count:80 "step pairs: forward = reverse" QCheck.(pair small_int small_int)
    (fun (seed, axis_pick) ->
      let _, r = random_engine seed in
      let doc = r.Engine.doc in
      let rng = Rox_util.Xoshiro.create (seed + 7) in
      let axis = Axis.all.(axis_pick mod Array.length Axis.all) in
      let is_attr p = Doc.kind doc p = Nodekind.Attr in
      let context =
        random_context rng doc |> Array.to_list
        |> List.filter (fun p -> not (is_attr p))
        |> Array.of_list
      in
      let all = Kind_index.all r.Engine.kinds in
      let candidates =
        match axis with
        | Axis.Attribute -> Kind_index.lookup r.Engine.kinds Nodekind.Attr
        | _ -> Array.of_list (List.filter (fun p -> not (is_attr p)) (Array.to_list all))
      in
      let fwd = ref [] in
      Staircase.iter_pairs ~doc ~axis ~context ~candidates (fun _ c s ->
          fwd := (c, s) :: !fwd);
      let rev = ref [] in
      Staircase.iter_pairs ~doc ~axis:(Axis.reverse axis) ~context:candidates
        ~candidates:context (fun _ s c -> rev := (c, s) :: !rev);
      List.sort_uniq compare !fwd = List.sort_uniq compare !rev)

(* The cut-off estimate never underestimates the produced prefix, and the
   consumed fraction is sane. *)
let prop_cutoff_sanity =
  qtest ~count:100 "cutoff: est >= produced, 0 < fraction <= 1"
    QCheck.(triple small_int (int_range 1 50) (int_range 1 20))
    (fun (seed, limit, hits) ->
      let rng = Rox_util.Xoshiro.create seed in
      let outer_len = 1 + Rox_util.Xoshiro.int rng 30 in
      let cut =
        Cutoff.run ~limit ~outer_len ~iter:(fun emit ->
            for oi = 0 to outer_len - 1 do
              for h = 0 to hits - 1 do
                emit oi h
              done
            done)
      in
      cut.Cutoff.est >= float_of_int cut.Cutoff.produced -. 1e-9
      && cut.Cutoff.fraction > 0.0
      && cut.Cutoff.fraction <= 1.0
      && cut.Cutoff.produced <= limit + 0 (* the cut stops exactly at limit *)
      && (cut.Cutoff.completed || cut.Cutoff.produced = limit))

(* Value joins: all three algorithms produce the same pair set on random
   documents. *)
let prop_value_join_equivalence =
  qtest ~count:80 "value joins: hash = merge = index-NL" QCheck.small_int (fun seed ->
      let _, r = random_engine seed in
      let doc = r.Engine.doc in
      let texts = Kind_index.lookup r.Engine.kinds Nodekind.Text in
      if Array.length texts < 2 then true
      else begin
        let mid = Array.length texts / 2 in
        let left = Array.sub texts 0 mid in
        let right = Array.sub texts mid (Array.length texts - mid) in
        let collect iter =
          let out = ref [] in
          iter (fun _ o i -> out := (o, i) :: !out);
          List.sort_uniq compare !out
        in
        let hash =
          collect (fun f ->
              Value_join.iter_hash ~outer_doc:doc ~outer:left ~inner_doc:doc ~inner:right f)
        in
        let merge =
          collect (fun f ->
              Value_join.iter_merge ~outer_doc:doc ~outer:left ~inner_doc:doc ~inner:right f)
        in
        let nl =
          collect (fun f ->
              Value_join.iter_index_nl ~outer_doc:doc ~outer:left
                ~inner:{ Value_join.docref = r; side = Value_join.Inner_text;
                         restrict = Some right }
                f)
        in
        hash = merge && merge = nl
      end)

(* Staircase with restricted candidates = staircase with all candidates
   intersected with the restriction. *)
let prop_staircase_restriction =
  qtest ~count:80 "staircase: restricted = intersect(full)" QCheck.(pair small_int small_int)
    (fun (seed, axis_pick) ->
      let _, r = random_engine seed in
      let doc = r.Engine.doc in
      let rng = Rox_util.Xoshiro.create (seed + 3) in
      let axis = Axis.all.(axis_pick mod Array.length Axis.all) in
      let context = random_context rng doc in
      let all = Kind_index.all r.Engine.kinds in
      let restricted = Sampling.sample rng all (Array.length all / 2) in
      let direct = Staircase.join ~doc ~axis ~context restricted in
      let via_full =
        Nodeset.intersect (Staircase.join ~doc ~axis ~context all) restricted
      in
      direct = via_full)

(* Runtime semijoin consistency: after all edges execute, every vertex
   table equals the distinct column of the final relation. *)
let prop_tables_match_relation =
  qtest ~count:50 "T(v) = distinct final column" QCheck.small_int (fun seed ->
      let engine, _ = random_engine seed in
      let src = {|for $a in doc("doc0.xml")//a[./b] return $a|} in
      match Rox_xquery.Compile.compile_string engine src with
      | exception Rox_xquery.Compile.Unsupported _ -> true
      | compiled ->
        let result = Rox_core.Optimizer.run compiled in
        let rel = result.Rox_core.Optimizer.relation in
        let runtime = Rox_core.State.runtime result.Rox_core.Optimizer.state in
        Array.for_all
          (fun v ->
            match Runtime.table runtime v with
            | Some table -> table = Relation.column_distinct rel v
            | None -> true)
          (Relation.vertices rel))

(* Sampling from a table is a subset and deterministic per seed. *)
let prop_sampling_deterministic =
  qtest ~count:100 "index sampling deterministic per seed"
    QCheck.(pair small_int (int_range 1 200))
    (fun (seed, tau) ->
      let table = Array.init 500 (fun i -> 2 * i) in
      let s1 = Sampling.sample (Rox_util.Xoshiro.create seed) table tau in
      let s2 = Sampling.sample (Rox_util.Xoshiro.create seed) table tau in
      s1 = s2)

(* of_unsorted normalizes any scratch array — including already-sorted
   inputs with duplicates, which take the linear no-sort path. *)
let prop_of_unsorted_normalizes =
  qtest ~count:200 "of_unsorted: sorted, deduped, same element set"
    QCheck.(pair small_int bool)
    (fun (seed, presorted) ->
      let rng = Rox_util.Xoshiro.create (seed + 11) in
      let n = Rox_util.Xoshiro.int rng 40 in
      (* Dense value range: duplicates are common. *)
      let a = Array.init n (fun _ -> Rox_util.Xoshiro.int rng 25) in
      if presorted then Array.sort compare a;
      let out = Nodeset.of_unsorted a in
      Nodeset.is_sorted_dedup out
      && List.sort_uniq compare (Array.to_list a) = Array.to_list out)

let suite =
  [
    prop_step_direction_symmetry;
    prop_of_unsorted_normalizes;
    prop_cutoff_sanity;
    prop_value_join_equivalence;
    prop_staircase_restriction;
    prop_tables_match_relation;
    prop_sampling_deterministic;
  ]

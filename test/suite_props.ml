(* Cross-cutting property tests on random documents: operator equivalences
   and sampling invariants that the targeted suites don't cover. *)

open Rox_storage
open Rox_shred
open Rox_algebra
open Rox_joingraph
open Helpers

let random_engine seed =
  let engine, _ = engine_of_trees [ random_tree seed ] in
  (engine, Engine.get engine 0)

let random_context rng doc =
  let n = Doc.node_count doc in
  let k = 1 + Rox_util.Xoshiro.int rng (max 1 (n - 1)) in
  Rox_util.Xoshiro.sample_without_replacement rng n k

(* Step pairs are direction-independent: executing the reverse axis from
   the other side yields the same pair set. The engine only ever reverses
   an edge with the *target vertex's domain* as the new context, which is
   kind-restricted (attribute vertices hold attribute nodes, element/text
   vertices never do) — the test models that contract. *)
let prop_step_direction_symmetry =
  qtest ~count:80 "step pairs: forward = reverse" QCheck.(pair small_int small_int)
    (fun (seed, axis_pick) ->
      let _, r = random_engine seed in
      let doc = r.Engine.doc in
      let rng = Rox_util.Xoshiro.create (seed + 7) in
      let axis = Axis.all.(axis_pick mod Array.length Axis.all) in
      let is_attr p = Doc.kind doc p = Nodekind.Attr in
      let context =
        random_context rng doc |> Array.to_list
        |> List.filter (fun p -> not (is_attr p))
        |> Array.of_list |> col
      in
      let all = Kind_index.all r.Engine.kinds in
      let candidates =
        match axis with
        | Axis.Attribute -> Kind_index.lookup r.Engine.kinds Nodekind.Attr
        | _ -> col (Array.of_list (List.filter (fun p -> not (is_attr p)) (Array.to_list (arr all))))
      in
      let fwd = ref [] in
      Staircase.iter_pairs ~doc ~axis ~context ~candidates (fun _ c s ->
          fwd := (c, s) :: !fwd);
      let rev = ref [] in
      Staircase.iter_pairs ~doc ~axis:(Axis.reverse axis) ~context:candidates
        ~candidates:context (fun _ s c -> rev := (c, s) :: !rev);
      List.sort_uniq compare !fwd = List.sort_uniq compare !rev)

(* The cut-off estimate never underestimates the produced prefix, and the
   consumed fraction is sane. *)
let prop_cutoff_sanity =
  qtest ~count:100 "cutoff: est >= produced, 0 < fraction <= 1"
    QCheck.(triple small_int (int_range 1 50) (int_range 1 20))
    (fun (seed, limit, hits) ->
      let rng = Rox_util.Xoshiro.create seed in
      let outer_len = 1 + Rox_util.Xoshiro.int rng 30 in
      let cut =
        Cutoff.run ~limit ~outer_len ~iter:(fun emit ->
            for oi = 0 to outer_len - 1 do
              for h = 0 to hits - 1 do
                emit oi h
              done
            done)
      in
      cut.Cutoff.est >= float_of_int cut.Cutoff.produced -. 1e-9
      && cut.Cutoff.fraction > 0.0
      && cut.Cutoff.fraction <= 1.0
      && cut.Cutoff.produced <= limit + 0 (* the cut stops exactly at limit *)
      && (cut.Cutoff.completed || cut.Cutoff.produced = limit))

(* Value joins: all three algorithms produce the same pair set on random
   documents. *)
let prop_value_join_equivalence =
  qtest ~count:80 "value joins: hash = merge = index-NL" QCheck.small_int (fun seed ->
      let _, r = random_engine seed in
      let doc = r.Engine.doc in
      let texts = Kind_index.lookup r.Engine.kinds Nodekind.Text in
      if clen texts < 2 then true
      else begin
        let mid = clen texts / 2 in
        let left = Rox_util.Column.slice texts ~pos:0 ~len:mid in
        let right = Rox_util.Column.slice texts ~pos:mid ~len:(clen texts - mid) in
        let collect iter =
          let out = ref [] in
          iter (fun _ o i -> out := (o, i) :: !out);
          List.sort_uniq compare !out
        in
        let hash =
          collect (fun f ->
              Value_join.iter_hash ~outer_doc:doc ~outer:left ~inner_doc:doc ~inner:right f)
        in
        let merge =
          collect (fun f ->
              Value_join.iter_merge ~outer_doc:doc ~outer:left ~inner_doc:doc ~inner:right f)
        in
        let nl =
          collect (fun f ->
              Value_join.iter_index_nl ~outer_doc:doc ~outer:left
                ~inner:{ Value_join.docref = r; side = Value_join.Inner_text;
                         restrict = Some right }
                f)
        in
        hash = merge && merge = nl
      end)

(* Staircase with restricted candidates = staircase with all candidates
   intersected with the restriction. *)
let prop_staircase_restriction =
  qtest ~count:80 "staircase: restricted = intersect(full)" QCheck.(pair small_int small_int)
    (fun (seed, axis_pick) ->
      let _, r = random_engine seed in
      let doc = r.Engine.doc in
      let rng = Rox_util.Xoshiro.create (seed + 3) in
      let axis = Axis.all.(axis_pick mod Array.length Axis.all) in
      let context = col (random_context rng doc) in
      let all = Kind_index.all r.Engine.kinds in
      let restricted = Sampling.sample rng all (clen all / 2) in
      let direct = Staircase.join ~doc ~axis ~context restricted in
      let via_full =
        Nodeset.intersect (arr (Staircase.join ~doc ~axis ~context all)) (arr restricted)
      in
      arr direct = via_full)

(* Runtime semijoin consistency: after all edges execute, every vertex
   table equals the distinct column of the final relation. *)
let prop_tables_match_relation =
  qtest ~count:50 "T(v) = distinct final column" QCheck.small_int (fun seed ->
      let engine, _ = random_engine seed in
      let src = {|for $a in doc("doc0.xml")//a[./b] return $a|} in
      match Rox_xquery.Compile.compile_string engine src with
      | exception Rox_xquery.Compile.Unsupported _ -> true
      | compiled ->
        let result = Rox_core.Optimizer.run_default compiled in
        let rel = result.Rox_core.Optimizer.relation in
        let runtime = Rox_core.State.runtime result.Rox_core.Optimizer.state in
        Array.for_all
          (fun v ->
            match Runtime.table runtime v with
            | Some table -> Rox_util.Column.equal table (Relation.column_distinct rel v)
            | None -> true)
          (Relation.vertices rel))

(* Sampling from a table is a subset and deterministic per seed. *)
let prop_sampling_deterministic =
  qtest ~count:100 "index sampling deterministic per seed"
    QCheck.(pair small_int (int_range 1 200))
    (fun (seed, tau) ->
      let table = col (Array.init 500 (fun i -> 2 * i)) in
      let s1 = Sampling.sample (Rox_util.Xoshiro.create seed) table tau in
      let s2 = Sampling.sample (Rox_util.Xoshiro.create seed) table tau in
      Rox_util.Column.equal s1 s2)

(* of_unsorted normalizes any scratch array — including already-sorted
   inputs with duplicates, which take the linear no-sort path. *)
let prop_of_unsorted_normalizes =
  qtest ~count:200 "of_unsorted: sorted, deduped, same element set"
    QCheck.(pair small_int bool)
    (fun (seed, presorted) ->
      let rng = Rox_util.Xoshiro.create (seed + 11) in
      let n = Rox_util.Xoshiro.int rng 40 in
      (* Dense value range: duplicates are common. *)
      let a = Array.init n (fun _ -> Rox_util.Xoshiro.int rng 25) in
      if presorted then Array.sort compare a;
      let out = Nodeset.of_unsorted a in
      Nodeset.is_sorted_dedup out
      && List.sort_uniq compare (Array.to_list a) = Array.to_list out)

(* ---- columnar kernels vs the retained row-major reference -----------

   Every [Relation] kernel runs against [Relation.Naive], the seed's
   row-major implementation, on fuzzed relations. Widths 1..3 and row
   counts 0..24 over dense value ranges make zero-row, one-column and
   duplicate-heavy shapes all common; a dedicated variant forces the
   sorted on-column + grouped-pairs combination so [extend]'s merge path
   is exercised alongside its hash path. *)

module Naive = Relation.Naive

let xi = Rox_util.Xoshiro.int

let fuzz_naive rng ~base_vertex ~span =
  let w = 1 + xi rng 3 in
  let n = xi rng 25 in
  {
    Naive.verts = Array.init w (fun i -> base_vertex + i);
    data = Array.init (n * w) (fun _ -> xi rng span);
    nrows = n;
  }

let fuzz_pairs rng ~m ~lspan ~rspan =
  (Array.init m (fun _ -> xi rng lspan), Array.init m (fun _ -> xi rng rspan))

let cpairs (l, r) = { Exec.left = col l; right = col r }

let pick_vertex rng (r : Naive.r) =
  r.Naive.verts.(xi rng (Array.length r.Naive.verts))

let agree naive_out col_out = Relation.equal col_out (Naive.to_relation naive_out)

let prop_kernel_extend =
  qtest ~count:300 "columnar extend = naive extend (hash path)" QCheck.small_int
    (fun seed ->
      let rng = Rox_util.Xoshiro.create (seed + 201) in
      let span = 1 + xi rng 9 in
      let r = fuzz_naive rng ~base_vertex:0 ~span in
      let p = fuzz_pairs rng ~m:(xi rng 20) ~lspan:span ~rspan:50 in
      let on = pick_vertex rng r in
      agree
        (Naive.extend r ~on ~new_vertex:9 ~left:(fst p) ~right:(snd p))
        (Relation.extend (Naive.to_relation r) ~on ~new_vertex:9 (cpairs p)))

let prop_kernel_extend_merge =
  qtest ~count:300 "columnar extend = naive extend (merge path)" QCheck.small_int
    (fun seed ->
      let rng = Rox_util.Xoshiro.create (seed + 202) in
      let n = xi rng 25 in
      (* Strictly increasing on-column: detect sets the sorted flag, and
         the grouped pairs below steer [extend] onto its merge path. *)
      let r =
        {
          Naive.verts = [| 0; 1 |];
          data = Array.init (n * 2) (fun k -> if k mod 2 = 0 then k / 2 else xi rng 6);
          nrows = n;
        }
      in
      let m = xi rng 20 in
      let pl = Array.init m (fun _ -> xi rng (max n 1)) in
      Array.sort compare pl;
      let pr = Array.init m (fun i -> 100 + i) in
      agree
        (Naive.extend r ~on:0 ~new_vertex:9 ~left:pl ~right:pr)
        (Relation.extend (Naive.to_relation r) ~on:0 ~new_vertex:9 (cpairs (pl, pr))))

let prop_kernel_extend_too_large =
  qtest ~count:200 "extend Too_large parity with naive" QCheck.small_int
    (fun seed ->
      let rng = Rox_util.Xoshiro.create (seed + 203) in
      let span = 1 + xi rng 4 in
      let r = fuzz_naive rng ~base_vertex:0 ~span in
      let p = fuzz_pairs rng ~m:(10 + xi rng 10) ~lspan:span ~rspan:50 in
      let on = pick_vertex rng r in
      let max_rows = xi rng 12 in
      let run f = try `Ok (f ()) with Relation.Too_large n -> `Too_large n in
      let a =
        run (fun () ->
            Naive.extend r ~max_rows ~on ~new_vertex:9 ~left:(fst p) ~right:(snd p))
      in
      let b =
        run (fun () ->
            Relation.extend ~max_rows (Naive.to_relation r) ~on ~new_vertex:9 (cpairs p))
      in
      match (a, b) with
      | `Too_large x, `Too_large y -> x = y
      | `Ok x, `Ok y -> agree x y
      | _ -> false)

let prop_kernel_fuse =
  qtest ~count:300 "columnar fuse = naive fuse" QCheck.small_int
    (fun seed ->
      let rng = Rox_util.Xoshiro.create (seed + 204) in
      let span = 1 + xi rng 9 in
      let a = fuzz_naive rng ~base_vertex:0 ~span in
      let b = fuzz_naive rng ~base_vertex:10 ~span in
      let p = fuzz_pairs rng ~m:(xi rng 20) ~lspan:span ~rspan:span in
      let on_left = pick_vertex rng a and on_right = pick_vertex rng b in
      agree
        (Naive.fuse a b ~on_left ~on_right ~pl:(fst p) ~pr:(snd p))
        (Relation.fuse (Naive.to_relation a) (Naive.to_relation b) ~on_left ~on_right
           (cpairs p)))

let prop_kernel_filter_pairs =
  qtest ~count:300 "columnar filter_pairs = naive filter_pairs" QCheck.small_int
    (fun seed ->
      let rng = Rox_util.Xoshiro.create (seed + 205) in
      let span = 1 + xi rng 9 in
      let r = fuzz_naive rng ~base_vertex:0 ~span in
      let c1 = pick_vertex rng r and c2 = pick_vertex rng r in
      let p = fuzz_pairs rng ~m:(xi rng 25) ~lspan:span ~rspan:span in
      agree
        (Naive.filter_pairs r ~c1 ~c2 ~left:(fst p) ~right:(snd p))
        (Relation.filter_pairs (Naive.to_relation r) ~c1 ~c2 (cpairs p)))

let prop_kernel_unary =
  qtest ~count:300 "columnar distinct/sort_rows/project = naive" QCheck.small_int
    (fun seed ->
      let rng = Rox_util.Xoshiro.create (seed + 206) in
      (* Dense values: whole-row duplicates are common, so [distinct]
         really eliminates and [sort_rows] really reorders. *)
      let r = fuzz_naive rng ~base_vertex:0 ~span:(1 + xi rng 6) in
      let keep =
        let vs = Array.copy r.Naive.verts in
        for i = Array.length vs - 1 downto 1 do
          let j = xi rng (i + 1) in
          let t = vs.(i) in
          vs.(i) <- vs.(j);
          vs.(j) <- t
        done;
        Array.sub vs 0 (1 + xi rng (Array.length vs))
      in
      agree (Naive.distinct r) (Relation.distinct (Naive.to_relation r))
      && agree (Naive.sort_rows r) (Relation.sort_rows (Naive.to_relation r))
      && agree (Naive.project r keep) (Relation.project (Naive.to_relation r) keep))

(* Partition/concat identity: slice the base relation into K contiguous
   parts, run the kernel per part, merge in part order — the result must
   be bit-identical to the sequential kernel. This is the contract the
   Runtime's partitioned edge execution rests on (RX310). K in {1,2,3,8}
   over 0..24-row fuzzed relations covers zero-row parts, K > row-count,
   duplicate-heavy skew and the empty relation. *)
let prop_partition_kernel_merge =
  qtest ~count:300 "partition -> extend per part -> concat = sequential"
    QCheck.(pair small_int (int_range 0 3))
    (fun (seed, kpick) ->
      let parts = [| 1; 2; 3; 8 |].(kpick) in
      let rng = Rox_util.Xoshiro.create (seed + 310) in
      let span = 1 + xi rng 9 in
      let naive = fuzz_naive rng ~base_vertex:0 ~span in
      let r = Naive.to_relation naive in
      let pairs = cpairs (fuzz_pairs rng ~m:(xi rng 20) ~lspan:span ~rspan:50) in
      let on = pick_vertex rng naive in
      let sequential = Relation.extend r ~on ~new_vertex:9 pairs in
      let merged =
        Relation.concat_parts
          (Array.map
             (fun base -> Relation.extend base ~on ~new_vertex:9 pairs)
             (Relation.partition r ~by:on ~parts))
      in
      Relation.equal merged sequential)

let prop_partition_filter_merge =
  qtest ~count:300 "partition -> filter_pairs per part -> concat = sequential"
    QCheck.(pair small_int (int_range 0 3))
    (fun (seed, kpick) ->
      let parts = [| 1; 2; 3; 8 |].(kpick) in
      let rng = Rox_util.Xoshiro.create (seed + 311) in
      let span = 1 + xi rng 9 in
      let naive = fuzz_naive rng ~base_vertex:0 ~span in
      let r = Naive.to_relation naive in
      let c1 = pick_vertex rng naive in
      let c2 = pick_vertex rng naive in
      let pairs = cpairs (fuzz_pairs rng ~m:(xi rng 20) ~lspan:span ~rspan:span) in
      let sequential = Relation.filter_pairs r ~c1 ~c2 pairs in
      let merged =
        Relation.concat_parts
          (Array.map
             (fun base -> Relation.filter_pairs base ~c1 ~c2 pairs)
             (Relation.partition r ~by:c1 ~parts))
      in
      Relation.equal merged sequential)

let prop_kernel_cross =
  qtest ~count:200 "columnar cross = naive cross" QCheck.small_int
    (fun seed ->
      let rng = Rox_util.Xoshiro.create (seed + 207) in
      let a = fuzz_naive rng ~base_vertex:0 ~span:5 in
      let b = fuzz_naive rng ~base_vertex:10 ~span:5 in
      agree (Naive.cross a b) (Relation.cross (Naive.to_relation a) (Naive.to_relation b)))

let suite =
  [
    prop_step_direction_symmetry;
    prop_of_unsorted_normalizes;
    prop_cutoff_sanity;
    prop_value_join_equivalence;
    prop_staircase_restriction;
    prop_tables_match_relation;
    prop_sampling_deterministic;
    prop_kernel_extend;
    prop_kernel_extend_merge;
    prop_kernel_extend_too_large;
    prop_kernel_fuse;
    prop_kernel_filter_pairs;
    prop_kernel_unary;
    prop_kernel_cross;
    prop_partition_kernel_merge;
    prop_partition_filter_merge;
  ]

open Rox_storage
open Rox_xquery
open Rox_joingraph
open Rox_classical
open Helpers

let dblp_setup ?(reduction = 400) names =
  let engine = Engine.create () in
  let params = { Rox_workload.Dblp.default_gen with reduction } in
  let loaded = Rox_workload.Dblp.load ~params engine (List.map Rox_workload.Dblp.find_venue names) in
  let uris = List.map (fun l -> Rox_workload.Dblp.uri_of l.Rox_workload.Dblp.venue) loaded in
  let compiled = Compile.compile_string engine (Rox_workload.Dblp.query_for uris) in
  (engine, compiled)

(* ---------- Enumerate ---------- *)

let test_join_order_count () =
  check_int "18 orders for 4 docs" 18 (List.length (Enumerate.all_join_orders ~ndocs:4));
  (* 3 docs: 3 unordered pairs x 1 remaining = 3 linear, no bushy. *)
  check_int "3 orders for 3 docs" 3 (List.length (Enumerate.all_join_orders ~ndocs:3));
  check_int "1 order for 2 docs" 1 (List.length (Enumerate.all_join_orders ~ndocs:2))

let test_order_names () =
  check_string "linear" "(2-1)-3-4" (Enumerate.order_name (Enumerate.Linear [ 1; 0; 2; 3 ]));
  check_string "bushy" "(2-1)-(3-4)" (Enumerate.order_name (Enumerate.Bushy ((1, 0), (2, 3))));
  let names =
    List.map Enumerate.order_name (Enumerate.all_join_orders ~ndocs:4)
    |> List.sort_uniq compare
  in
  check_int "all order names distinct" 18 (List.length names)

let test_analyze_template () =
  let _, compiled = dblp_setup [ "VLDB"; "ICDE"; "SIGMOD"; "EDBT" ] in
  match Enumerate.analyze compiled.Compile.graph with
  | None -> Alcotest.fail "template not recognized"
  | Some t ->
    check_int "4 slots" 4 (Array.length t.Enumerate.slots);
    Array.iter
      (fun slot -> check_int "one step per doc" 1 (List.length slot.Enumerate.step_edges))
      t.Enumerate.slots

let test_analyze_rejects_xmark () =
  let engine = Engine.create () in
  ignore (Rox_workload.Xmark.generate ~params:(Rox_workload.Xmark.scaled 0.01) engine ~uri:"x.xml");
  let compiled =
    Compile.compile_string engine
      {|let $d := doc("x.xml")
for $o in $d//open_auction, $p in $d//person
where $o//bidder//personref/@person = $p/@id
return $o|}
  in
  check_bool "no template for XMark" true (Enumerate.analyze compiled.Compile.graph = None)

let test_plans_cover_all_edges () =
  let engine, compiled = dblp_setup [ "VLDB"; "ICDE"; "SIGMOD"; "EDBT" ] in
  let template = Option.get (Enumerate.analyze compiled.Compile.graph) in
  let plans = Enumerate.canonical_plans compiled.Compile.graph template in
  check_int "54 canonical plans" 54 (List.length plans);
  List.iter
    (fun (_, _, edges) ->
      (* Executing the plan terminates with every edge executed. *)
      let run = Executor.execute_default engine compiled.Compile.graph edges in
      check_bool "relation materialized" true (Relation.rows run.Executor.relation >= 0))
    plans

(* ---------- Executor correctness: every canonical plan = naive ---------- *)

let test_all_plans_same_answer () =
  let engine, compiled = dblp_setup [ "VLDB"; "ICDE"; "SIGMOD"; "EDBT" ] in
  let template = Option.get (Enumerate.analyze compiled.Compile.graph) in
  let naive =
    Naive.eval_query engine compiled.Compile.query |> List.map snd
  in
  List.iter
    (fun (order, placement, edges) ->
      let nodes, _ = Executor.answer_default compiled edges in
      check_bool
        (Printf.sprintf "plan %s/%s = naive" (Enumerate.order_name order)
           (Enumerate.placement_name placement))
        true
        (Array.to_list nodes = naive))
    (Enumerate.canonical_plans compiled.Compile.graph template)

let test_plan_error_on_incomplete () =
  let engine, compiled = dblp_setup [ "VLDB"; "ICDE" ] in
  match Executor.execute_default engine compiled.Compile.graph [] with
  | exception Executor.Plan_error _ -> ()
  | _ -> Alcotest.fail "empty plan must fail"

let test_plan_error_on_duplicate () =
  let engine, compiled = dblp_setup [ "VLDB"; "ICDE" ] in
  let template = Option.get (Enumerate.analyze compiled.Compile.graph) in
  let edges =
    Enumerate.plan_edges compiled.Compile.graph template
      ~order:(Enumerate.Linear [ 0; 1 ]) ~placement:Enumerate.SJ
  in
  match Executor.execute_default engine compiled.Compile.graph (edges @ edges) with
  | exception Executor.Plan_error _ -> ()
  | _ -> Alcotest.fail "duplicated plan must fail"

(* ---------- Classical optimizer ---------- *)

let test_classical_smallest_first () =
  let engine, compiled = dblp_setup [ "VLDB"; "ICDE"; "SIGMOD"; "EDBT" ] in
  let template = Option.get (Enumerate.analyze compiled.Compile.graph) in
  let sizes =
    Array.to_list template.Enumerate.slots
    |> List.map (fun s -> Classical_opt.input_size engine compiled.Compile.graph s)
  in
  match Classical_opt.join_order engine compiled.Compile.graph template with
  | Enumerate.Linear order ->
    let ordered_sizes = List.map (fun d -> List.nth sizes d) order in
    check_bool "ascending input sizes" true
      (List.sort compare ordered_sizes = ordered_sizes)
  | Enumerate.Bushy _ -> Alcotest.fail "classical order must be linear"

let test_input_size_exact () =
  let engine, compiled = dblp_setup [ "VLDB"; "ICDE" ] in
  let template = Option.get (Enumerate.analyze compiled.Compile.graph) in
  Array.iter
    (fun slot ->
      let size = Classical_opt.input_size engine compiled.Compile.graph slot in
      (* Equal to the distinct text-node count under author elements. *)
      check_bool "positive" true (size > 0))
    template.Enumerate.slots

let test_static_order_executes () =
  let engine = Engine.create () in
  ignore (Rox_workload.Xmark.generate ~params:(Rox_workload.Xmark.scaled 0.02) engine ~uri:"x.xml");
  let src =
    {|let $d := doc("x.xml")
for $o in $d//open_auction[.//current/text() < 145],
    $p in $d//person[.//province]
where $o//bidder//personref/@person = $p/@id
return $o|}
  in
  let compiled = Compile.compile_string engine src in
  let order = Classical_opt.static_order engine compiled.Compile.graph in
  let nodes, _ = Executor.answer_default compiled order in
  let naive = Naive.eval_query engine compiled.Compile.query |> List.map snd in
  check_bool "static order correct" true (Array.to_list nodes = naive)

(* ---------- Cross-check: every plan work >= some positive cost,
   and executor join_rows accounting is consistent ---------- *)

let test_join_rows_accounting () =
  let engine, compiled = dblp_setup [ "VLDB"; "ICDE"; "SIGMOD"; "EDBT" ] in
  let template = Option.get (Enumerate.analyze compiled.Compile.graph) in
  let edges =
    Enumerate.plan_edges compiled.Compile.graph template
      ~order:(Enumerate.Linear [ 0; 1; 2; 3 ]) ~placement:Enumerate.SJ
  in
  let run = Executor.execute_default engine compiled.Compile.graph edges in
  let manual_join =
    List.fold_left
      (fun acc (id, rows) ->
        match (Graph.edge compiled.Compile.graph id).Edge.op with
        | Edge.Equijoin -> acc + rows
        | Edge.Step _ -> acc)
      0 run.Executor.edge_rows
  in
  check_int "join_rows consistent" manual_join run.Executor.join_rows;
  let manual_total = List.fold_left (fun acc (_, r) -> acc + r) 0 run.Executor.edge_rows in
  check_int "cumulative consistent" manual_total run.Executor.cumulative_rows

let suite =
  [
    Alcotest.test_case "join order count" `Quick test_join_order_count;
    Alcotest.test_case "order names" `Quick test_order_names;
    Alcotest.test_case "analyze template" `Quick test_analyze_template;
    Alcotest.test_case "analyze rejects XMark" `Quick test_analyze_rejects_xmark;
    Alcotest.test_case "plans cover all edges" `Quick test_plans_cover_all_edges;
    Alcotest.test_case "all 54 plans = naive" `Quick test_all_plans_same_answer;
    Alcotest.test_case "plan error incomplete" `Quick test_plan_error_on_incomplete;
    Alcotest.test_case "plan error duplicate" `Quick test_plan_error_on_duplicate;
    Alcotest.test_case "classical smallest-first" `Quick test_classical_smallest_first;
    Alcotest.test_case "input size positive" `Quick test_input_size_exact;
    Alcotest.test_case "static order executes" `Quick test_static_order_executes;
    Alcotest.test_case "join rows accounting" `Quick test_join_rows_accounting;
  ]

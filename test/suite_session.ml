(* The per-query Session: determinism under equal seeds, isolation between
   concurrent sessions, typed resource budgets, and the RX307 confinement
   tripwire that keeps operators off process-global state. *)

open Rox_storage
open Rox_xquery
open Rox_core
open Helpers

let xmark_engine () =
  let engine = Engine.create () in
  ignore
    (Rox_workload.Xmark.generate ~params:(Rox_workload.Xmark.scaled 0.02) engine
       ~uri:"xmark.xml"
      : Engine.docref);
  engine

let q1 =
  {|let $d := doc("xmark.xml")
for $o in $d//open_auction[.//current/text() < 145],
    $p in $d//person[.//province]
where $o//bidder//personref/@person = $p/@id
return $o|}

let seeded seed =
  Session.create ~config:{ (Session.default_config ()) with Session.seed } ()

(* ---------- Determinism ---------- *)

let test_same_seed_same_run () =
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine q1 in
  let t1 = Rox_joingraph.Trace.create () in
  let t2 = Rox_joingraph.Trace.create () in
  let s1 =
    Session.create ~config:{ (Session.default_config ()) with Session.seed = 9 } ~trace:t1 ()
  in
  let s2 =
    Session.create ~config:{ (Session.default_config ()) with Session.seed = 9 } ~trace:t2 ()
  in
  let a1, r1 = Optimizer.answer s1 compiled in
  let a2, r2 = Optimizer.answer s2 compiled in
  check_bool "identical answers" true (a1 = a2);
  check_bool "identical edge order" true
    (r1.Optimizer.edge_order = r2.Optimizer.edge_order);
  check_bool "identical traces" true
    (Rox_joingraph.Trace.events t1 = Rox_joingraph.Trace.events t2)

let test_session_is_single_use_rng () =
  (* Two runs on ONE session advance its RNG; two fresh sessions don't.
     Answers must agree either way — only the explored order may differ. *)
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine q1 in
  let shared = seeded 5 in
  let a1, _ = Optimizer.answer shared compiled in
  let a2, _ = Optimizer.answer shared compiled in
  let fresh, _ = Optimizer.answer (seeded 5) compiled in
  check_bool "same answer across reuse" true (a1 = a2);
  check_bool "same answer from a fresh session" true (a1 = fresh)

(* ---------- Isolation ---------- *)

let test_counters_isolated () =
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine q1 in
  let s1 = seeded 1 in
  let s2 = seeded 2 in
  ignore (Optimizer.answer s1 compiled);
  let c1 = Rox_algebra.Cost.total (Session.counter s1) in
  let c2 = Rox_algebra.Cost.total (Session.counter s2) in
  check_bool "worked session charged" true (c1 > 0);
  check_int "idle session untouched" 0 c2

let test_budget_failure_isolated () =
  (* One session blowing its budget must not poison another. *)
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine q1 in
  let starved =
    Session.create
      ~config:
        { (Session.default_config ()) with
          Session.budgets =
            { Session.default_budgets with Session.max_sampled_rows = Some 1 } }
      ()
  in
  (match Optimizer.answer starved compiled with
   | exception Rox_algebra.Cost.Budget_exceeded { reason; _ } ->
     check_bool "sampled-rows reason" true (reason = Rox_algebra.Cost.Sampled_rows)
   | _ -> Alcotest.fail "1-sampled-row budget must abort");
  let healthy, _ = Optimizer.answer (seeded 3) compiled in
  let reference, _ = Optimizer.answer_default compiled in
  check_bool "later session unaffected" true (healthy = reference)

(* ---------- Budgets ---------- *)

let test_deadline_budget () =
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine q1 in
  let session =
    Session.create
      ~config:
        { (Session.default_config ()) with
          Session.budgets =
            { Session.default_budgets with Session.deadline_ms = Some 0 } }
      ()
  in
  match Optimizer.answer session compiled with
  | exception Rox_algebra.Cost.Budget_exceeded { reason; _ } ->
    check_bool "deadline reason" true (reason = Rox_algebra.Cost.Deadline)
  | _ -> Alcotest.fail "a 0 ms deadline must abort"

let test_budget_message () =
  let exn =
    Rox_algebra.Cost.Budget_exceeded
      { reason = Rox_algebra.Cost.Deadline; spent = 7; budget = 5 }
  in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  match Rox_algebra.Cost.budget_message exn with
  | Some m -> check_bool "mentions deadline" true (contains m "deadline")
  | None -> Alcotest.fail "budget_message must render Budget_exceeded"

(* ---------- RX307 confinement ---------- *)

let test_confined_global_read_trips () =
  let session =
    Session.create
      ~config:{ (Session.default_config ()) with Session.sanitize = true } ()
  in
  match
    Session.confine session (fun () ->
        ignore (Rox_algebra.Sanitize.default_mode () : bool))
  with
  | exception Rox_algebra.Sanitize.Violation v ->
    check_bool "Session_confined" true
      (v.Rox_algebra.Sanitize.contract = Rox_algebra.Sanitize.Session_confined)
  | () -> Alcotest.fail "global read inside an armed region must trip RX307"

let test_unarmed_region_permissive () =
  (* sanitize off: the region is marked but the trap is not armed. *)
  let session = Session.create () in
  let mode =
    Session.confine session (fun () -> Rox_algebra.Sanitize.default_mode ())
  in
  check_bool "reads fine when unarmed" true (mode = false || mode = true)

let test_full_run_stays_confined () =
  (* A whole optimizer run with sanitize on: no operator on the path may
     fall back to process-global state. *)
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine q1 in
  let session =
    Session.create
      ~config:{ (Session.default_config ()) with Session.sanitize = true } ()
  in
  let answer, _ = Optimizer.answer session compiled in
  let reference, _ = Optimizer.answer_default compiled in
  check_bool "sanitized run = default run" true (answer = reference)

(* ---------- Domains ---------- *)

let test_two_domains_bit_identical () =
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine q1 in
  let work () = fst (Optimizer.answer (seeded 11) compiled) in
  let other = Domain.spawn work in
  let mine = work () in
  let theirs = Domain.join other in
  check_bool "domains agree bit-for-bit" true (mine = theirs)

(* ---------- Intra-query pool ---------- *)

let test_pool_fork_join () =
  let pool = Pool.create ~parts:3 in
  check_int "parts" 3 (Pool.parts pool);
  let n = 64 in
  let out = Array.make n (-1) in
  Pool.run pool n (fun ~worker:_ i -> out.(i) <- i * i);
  check_bool "each task filled exactly its own slot" true
    (Array.to_list out = List.init n (fun i -> i * i));
  (* Failure is deterministic: the LOWEST-index exception re-raises, no
     matter which domain hit one first. *)
  (try
     Pool.run pool 8 (fun ~worker:_ i ->
         if i >= 2 then failwith (string_of_int i));
     Alcotest.fail "expected a task failure"
   with Failure m -> check_string "lowest-index exception wins" "2" m);
  (* The pool survives a failed batch. *)
  Pool.run pool 4 (fun ~worker:_ _ -> ());
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  try
    Pool.run pool 4 (fun ~worker:_ _ -> ());
    Alcotest.fail "expected Invalid_argument after shutdown"
  with Invalid_argument _ -> ()

let test_parallel_parts_bit_identical () =
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine q1 in
  let run parts =
    let session =
      Session.create
        ~config:
          { (Session.default_config ()) with
            Session.seed = 11; parallel_parts = parts }
        ()
    in
    let answer = fst (Optimizer.answer session compiled) in
    Session.release session;
    answer
  in
  let reference = run 1 in
  List.iter
    (fun parts ->
      check_bool
        (Printf.sprintf "parts=%d answer bit-identical" parts)
        true
        (run parts = reference))
    [ 2; 3; 4 ]

let test_parallel_parts_one_spawns_nothing () =
  let session = seeded 5 in
  check_int "no pool by default" 1 (Session.parallel_parts session);
  (* run_tasks without a pool is the inline loop: task order, worker 0. *)
  let order = ref [] in
  Session.run_tasks session 5 (fun ~worker i ->
      check_int "inline worker is the caller" 0 worker;
      order := i :: !order);
  check_bool "inline tasks run in order" true
    (List.rev !order = [ 0; 1; 2; 3; 4 ]);
  Session.release session

let test_fork_rng_seed_split () =
  let session = seeded 42 in
  let draw rng = List.init 8 (fun _ -> Rox_util.Xoshiro.int rng 1_000_000) in
  (* fork_rng derives from the session SEED, not the live RNG: forking
     must not advance session randomness (the parts=1 bit-identity rule),
     so the same stream replays and distinct streams decorrelate. *)
  let a = draw (Session.fork_rng session ~stream:3) in
  let b = draw (Session.fork_rng session ~stream:3) in
  let c = draw (Session.fork_rng session ~stream:4) in
  check_bool "same stream replays" true (a = b);
  check_bool "distinct streams decorrelate" true (a <> c)

let suite =
  [
    Alcotest.test_case "same seed, same run" `Quick test_same_seed_same_run;
    Alcotest.test_case "session reuse keeps the answer" `Quick
      test_session_is_single_use_rng;
    Alcotest.test_case "counters isolated" `Quick test_counters_isolated;
    Alcotest.test_case "budget failure isolated" `Quick
      test_budget_failure_isolated;
    Alcotest.test_case "deadline budget aborts" `Quick test_deadline_budget;
    Alcotest.test_case "budget message renders" `Quick test_budget_message;
    Alcotest.test_case "RX307 trips on confined global read" `Quick
      test_confined_global_read_trips;
    Alcotest.test_case "unarmed region reads globals" `Quick
      test_unarmed_region_permissive;
    Alcotest.test_case "sanitized full run" `Quick test_full_run_stays_confined;
    Alcotest.test_case "two domains, identical answers" `Quick
      test_two_domains_bit_identical;
    Alcotest.test_case "pool fork/join basics" `Quick test_pool_fork_join;
    Alcotest.test_case "parallel parts, identical answers" `Slow
      test_parallel_parts_bit_identical;
    Alcotest.test_case "parts=1 spawns nothing" `Quick
      test_parallel_parts_one_spawns_nothing;
    Alcotest.test_case "fork_rng seed-splits" `Quick test_fork_rng_seed_split;
  ]

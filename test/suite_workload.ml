open Rox_storage
open Rox_shred
open Rox_workload
open Helpers

(* ---------- XMark generator ---------- *)

let test_xmark_forms_agree () =
  let engine = Engine.create () in
  let params = Xmark.scaled 0.01 in
  let r = Xmark.generate ~seed:5 ~params engine ~uri:"x.xml" in
  let tree = Xmark.generate_tree ~seed:5 ~params () in
  check_int "same node counts" (Rox_xmldom.Tree.node_count tree) (Doc.node_count r.Engine.doc);
  (* Full structural agreement. *)
  check_bool "same document" true (Navigation.unshred r.Engine.doc = tree)

let test_xmark_populations () =
  let engine = Engine.create () in
  let params = Xmark.scaled 0.1 in
  let r = Xmark.generate ~params engine ~uri:"x.xml" in
  let count name = clen (Element_index.lookup_name r.Engine.elements name) in
  check_int "items" params.Xmark.n_items (count "item");
  check_int "persons" params.Xmark.n_persons (count "person");
  check_int "auctions" params.Xmark.n_auctions (count "open_auction");
  check_bool "has bidders" true (count "bidder" > params.Xmark.n_auctions)

let test_xmark_correlation () =
  (* The planted correlation: auctions with current < median have fewer
     bidders on average than auctions above it. *)
  let engine = Engine.create () in
  let params = Xmark.scaled 0.2 in
  let r = Xmark.generate ~params engine ~uri:"x.xml" in
  let doc = r.Engine.doc in
  let auctions = Element_index.lookup_name r.Engine.elements "open_auction" in
  let stats =
    Array.map
      (fun a ->
        let kids = Navigation.children doc a in
        let bidders = ref 0 in
        let price = ref nan in
        Array.iter
          (fun c ->
            match Doc.name doc c with
            | "bidder" -> incr bidders
            | "current" ->
              price := float_of_string (Doc.value doc (Navigation.children doc c).(0))
            | _ -> ())
          kids;
        (!price, !bidders))
      (arr auctions)
  in
  let low = Array.to_list stats |> List.filter (fun (p, _) -> p < 145.0) in
  let high = Array.to_list stats |> List.filter (fun (p, _) -> p >= 145.0) in
  let avg l = float_of_int (List.fold_left (fun a (_, b) -> a + b) 0 l) /. float_of_int (max 1 (List.length l)) in
  check_bool "both sides populated" true (low <> [] && high <> []);
  check_bool "bidders correlate with price" true (avg high > avg low *. 1.5)

let test_xmark_quantity_fraction () =
  let engine = Engine.create () in
  let params = Xmark.scaled 0.2 in
  let r = Xmark.generate ~params engine ~uri:"x.xml" in
  let ones =
    match Engine.value_id engine "1" with
    | Some vid -> Value_index.text_eq_count r.Engine.values vid
    | None -> 0
  in
  let frac = float_of_int ones /. float_of_int params.Xmark.n_items in
  check_bool "about 81% quantity one" true (frac > 0.7 && frac < 0.95)

(* ---------- DBLP generator ---------- *)

let test_dblp_table3 () =
  check_int "23 venues" 23 (Array.length Dblp.venues);
  let by_area a =
    Array.to_list Dblp.venues |> List.filter (fun v -> Dblp.primary_area v = a) |> List.length
  in
  check_int "AI" 4 (by_area Dblp.AI);
  check_int "BI" 2 (by_area Dblp.BI);
  check_int "DM" 5 (by_area Dblp.DM);
  check_int "IR" 6 (by_area Dblp.IR);
  check_int "DB" 6 (by_area Dblp.DB);
  check_int "VLDB tags" 6865 (Dblp.find_venue "VLDB").Dblp.author_tags;
  (match Dblp.find_venue "NOPE" with
   | exception Not_found -> ()
   | _ -> Alcotest.fail "unknown venue must fail")

let test_dblp_tag_counts () =
  let engine = Engine.create () in
  let params = { Dblp.default_gen with reduction = 10 } in
  let loaded = Dblp.load ~params engine [ Dblp.find_venue "VLDB"; Dblp.find_venue "INEX" ] in
  List.iter
    (fun l ->
      let expected = l.Dblp.venue.Dblp.author_tags / 10 in
      let actual = l.Dblp.author_tag_count in
      (* The article loop may overshoot by at most one article's authors. *)
      check_bool
        (Printf.sprintf "%s tags ~ table/10 (%d vs %d)" l.Dblp.venue.Dblp.name actual expected)
        true
        (actual >= expected && actual <= expected + 8);
      (* The index agrees with the reported count. *)
      check_int "index count agrees" actual
        (clen (Element_index.lookup_name l.Dblp.docref.Engine.elements "author")))
    loaded

let test_dblp_subset_invariance () =
  (* A venue's document must not depend on which other venues load. *)
  let gen selection =
    let engine = Engine.create () in
    let loaded = Dblp.load engine (List.map Dblp.find_venue selection) in
    let l = List.find (fun l -> l.Dblp.venue.Dblp.name = "KDD") loaded in
    Navigation.unshred l.Dblp.docref.Engine.doc
  in
  check_bool "same KDD doc in both subsets" true
    (gen [ "KDD"; "VLDB" ] = gen [ "ICDM"; "KDD"; "INEX" ])

let test_dblp_scaling () =
  let tags scale =
    let engine = Engine.create () in
    let params = { Dblp.default_gen with scale; reduction = 50 } in
    let loaded = Dblp.load ~params engine [ Dblp.find_venue "SIGMOD" ] in
    (List.hd loaded).Dblp.author_tag_count
  in
  let t1 = tags 1 and t10 = tags 10 in
  check_int "x10 multiplies tags" (t1 * 10) t10

let test_dblp_scaling_preserves_joins () =
  (* Join size between two docs scales by the replication factor. *)
  let join_size scale =
    let engine = Engine.create () in
    let params = { Dblp.default_gen with scale; reduction = 50 } in
    let loaded = Dblp.load ~params engine [ Dblp.find_venue "SIGMOD"; Dblp.find_venue "VLDB" ] in
    match loaded with
    | [ a; b ] ->
      Correlation.join_size
        (Correlation.author_multiset a.Dblp.docref)
        (Correlation.author_multiset b.Dblp.docref)
    | _ -> assert false
  in
  let j1 = join_size 1 and j10 = join_size 10 in
  check_int "x10 multiplies join size" (j1 * 10) j10

let test_dblp_correlation_structure () =
  let engine = Engine.create () in
  let loaded =
    Dblp.load engine
      (List.map Dblp.find_venue [ "VLDB"; "ICDE"; "SIGIR"; "ICIP" ])
  in
  let ms = List.map (fun l -> (l.Dblp.venue.Dblp.name, Correlation.author_multiset l.Dblp.docref)) loaded in
  let js a b = Correlation.pairwise_selectivity (List.assoc a ms) (List.assoc b ms) in
  (* Same-area pairs join far more selectively than cross-area pairs. *)
  check_bool "DB pair strong" true (js "VLDB" "ICDE" > 10.0 *. js "VLDB" "SIGIR");
  check_bool "IR pair strong" true (js "SIGIR" "ICIP" > 10.0 *. js "ICDE" "ICIP")

(* ---------- Correlation measure ---------- *)

let test_join_size_hand () =
  let m1 = Hashtbl.create 4 and m2 = Hashtbl.create 4 in
  Hashtbl.replace m1 1 2; (* value 1 twice *)
  Hashtbl.replace m1 2 1;
  Hashtbl.replace m2 1 3;
  Hashtbl.replace m2 3 5;
  check_int "sum of count products" 6 (Correlation.join_size m1 m2);
  check_bool "selectivity" true
    (abs_float (Correlation.pairwise_selectivity m1 m2 -. (6.0 *. 100.0 /. 8.0)) < 1e-9)

let test_measure_zero_for_uniform () =
  (* Four identical documents: all pairwise selectivities equal -> C = 0. *)
  let engine = Engine.create () in
  let tree = Rox_xmldom.Xml_parser.parse_string "<d><x><author>a</author></x></d>" in
  let docs =
    List.init 4 (fun i -> Engine.add_tree engine ~uri:(Printf.sprintf "%d.xml" i) tree)
  in
  check_bool "C = 0" true (Correlation.measure docs < 1e-9);
  check_bool "nonempty" true (Correlation.nonempty docs)

(* ---------- Combos ---------- *)

let test_classify () =
  let v name = Dblp.find_venue name in
  check_bool "4:0" true
    (Combos.classify [ v "VLDB"; v "ICDE"; v "SIGMOD"; v "EDBT" ] = Some Combos.G40);
  check_bool "3:1" true
    (Combos.classify [ v "VLDB"; v "ICDE"; v "SIGMOD"; v "ICIP" ] = Some Combos.G31);
  check_bool "2:2" true
    (Combos.classify [ v "VLDB"; v "ICDE"; v "ICIP"; v "SIGIR" ] = Some Combos.G22);
  check_bool "2:1:1 excluded" true
    (Combos.classify [ v "VLDB"; v "ICDE"; v "ICIP"; v "KDD" ] = None)

let test_all_combinations () =
  let combos = Combos.all_combinations Dblp.venues in
  let count g = List.length (List.filter (fun (g', _) -> g' = g) combos) in
  (* 4:0 = sum over areas of C(n,4): C(4,4)+C(2,4)+C(5,4)+C(6,4)+C(6,4)
     = 1 + 0 + 5 + 15 + 15 = 36. *)
  check_int "4:0 combos" 36 (count Combos.G40);
  check_bool "2:2 populated" true (count Combos.G22 > 100);
  check_bool "3:1 populated" true (count Combos.G31 > 100)

let test_sample_per_group () =
  let combos = Combos.all_combinations Dblp.venues in
  let sample = Combos.sample_per_group ~per_group:7 combos in
  List.iter
    (fun g ->
      let n = List.length (List.filter (fun (g', _) -> g' = g) sample) in
      check_bool "capped at 7" true (n <= 7);
      check_bool "nonzero" true (n > 0))
    Combos.groups;
  (* Deterministic. *)
  check_bool "deterministic" true (sample = Combos.sample_per_group ~per_group:7 combos)

let suite =
  [
    Alcotest.test_case "xmark forms agree" `Quick test_xmark_forms_agree;
    Alcotest.test_case "xmark populations" `Quick test_xmark_populations;
    Alcotest.test_case "xmark correlation" `Quick test_xmark_correlation;
    Alcotest.test_case "xmark quantity fraction" `Quick test_xmark_quantity_fraction;
    Alcotest.test_case "dblp table 3" `Quick test_dblp_table3;
    Alcotest.test_case "dblp tag counts" `Quick test_dblp_tag_counts;
    Alcotest.test_case "dblp subset invariance" `Quick test_dblp_subset_invariance;
    Alcotest.test_case "dblp scaling" `Quick test_dblp_scaling;
    Alcotest.test_case "dblp scaling preserves joins" `Quick test_dblp_scaling_preserves_joins;
    Alcotest.test_case "dblp correlation structure" `Quick test_dblp_correlation_structure;
    Alcotest.test_case "join size hand" `Quick test_join_size_hand;
    Alcotest.test_case "measure zero uniform" `Quick test_measure_zero_for_uniform;
    Alcotest.test_case "combos classify" `Quick test_classify;
    Alcotest.test_case "all combinations" `Quick test_all_combinations;
    Alcotest.test_case "sample per group" `Quick test_sample_per_group;
  ]
